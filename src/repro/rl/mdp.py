"""The weight-setting MDP (Section IV-A) wired around a WSD run.

One *episode* plays a whole training stream through WSD. At every
insertion t_k the agent observes the state s_k (Eqs. 19–22), emits an
action a_k = the weight of the arriving edge (Eq. 23), and — when the
next insertion arrives — receives the reward

    r_k = ε(t_k) − ε(t_{k+1}),   ε(t) = |c(t) − |J(t)||      (Eqs. 24–25)

where the ground truth |J(t)| comes from an exact incremental counter
running alongside. Rewards telescope to −ε(t_N), so maximising return is
exactly minimising the final estimation error (Eq. 26). Deletion events
advance the environment but do not generate decisions, matching the
paper's "WSD proceeds ... until a new edge insertion arrives".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.stream import EdgeStream
from repro.patterns.base import Pattern
from repro.patterns.exact import ExactCounter
from repro.rl.ddpg import DDPGAgent
from repro.samplers.wsd import WSD
from repro.weights.base import WeightContext, WeightFunction
from repro.weights.features import state_vector

__all__ = ["AgentWeight", "EpisodeStats", "SamplingEpisode"]

REWARD_SCALES = ("relative", "absolute")


class AgentWeight(WeightFunction):
    """Weight function that queries the agent and records (state, action).

    WSD calls this once per insertion; the episode driver then reads
    :attr:`last_state` / :attr:`last_action` to assemble transitions.
    """

    name = "agent"

    def __init__(
        self,
        agent: DDPGAgent,
        temporal_aggregation: str = "max",
        normalize: bool = True,
        explore: bool = True,
    ) -> None:
        self.agent = agent
        self.temporal_aggregation = temporal_aggregation
        self.normalize = normalize
        self.explore = explore
        self.last_state: np.ndarray | None = None
        self.last_action: float | None = None

    def __call__(self, ctx: WeightContext) -> float:
        state = state_vector(
            ctx,
            temporal_aggregation=self.temporal_aggregation,
            normalize=self.normalize,
        )
        action = self.agent.act(state, explore=self.explore)
        self.last_state = state
        self.last_action = action
        return action

    def reset(self) -> None:
        self.last_state = None
        self.last_action = None


@dataclass
class EpisodeStats:
    """Summary of one training episode."""

    transitions: int = 0
    updates: int = 0
    total_reward: float = 0.0
    final_error: float = 0.0
    critic_losses: list[float] = field(default_factory=list)

    @property
    def mean_critic_loss(self) -> float:
        if not self.critic_losses:
            return float("nan")
        return float(np.mean(self.critic_losses))


class SamplingEpisode:
    """Plays one stream through WSD while training a DDPG agent."""

    def __init__(
        self,
        agent: DDPGAgent,
        pattern: str | Pattern,
        budget: int,
        temporal_aggregation: str = "max",
        normalize: bool = True,
        reward_scale: str = "relative",
        rank_fn: str = "inverse-uniform",
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if reward_scale not in REWARD_SCALES:
            raise ConfigurationError(
                f"reward_scale must be one of {REWARD_SCALES}, got "
                f"{reward_scale!r}"
            )
        self.agent = agent
        self.pattern = pattern
        self.budget = budget
        self.temporal_aggregation = temporal_aggregation
        self.normalize = normalize
        self.reward_scale = reward_scale
        self.rank_fn = rank_fn
        self.rng = rng

    def _error(self, estimate: float, truth: int) -> float:
        eps = abs(estimate - truth)
        if self.reward_scale == "relative":
            return eps / max(1.0, float(truth))
        return eps

    def run(
        self,
        stream: EdgeStream,
        explore: bool = True,
        learn: bool = True,
        update_every: int = 1,
        max_updates: int | None = None,
    ) -> EpisodeStats:
        """Play ``stream``; optionally train the agent as it goes.

        ``update_every`` gradient updates happen once per that many
        transitions (after the replay warmup); ``max_updates`` caps the
        number of updates in this episode (for budgeted training runs).
        """
        weight_fn = AgentWeight(
            self.agent,
            temporal_aggregation=self.temporal_aggregation,
            normalize=self.normalize,
            explore=explore,
        )
        sampler = WSD(
            self.pattern,
            self.budget,
            weight_fn,
            rank_fn=self.rank_fn,
            rng=self.rng,
        )
        exact = ExactCounter(self.pattern)
        stats = EpisodeStats()
        self.agent.noise.reset()

        prev_state: np.ndarray | None = None
        prev_action: float | None = None
        prev_error: float | None = None
        since_update = 0

        for event in stream:
            sampler.process(event)
            exact.process(event)
            if not event.is_insertion:
                continue
            error = self._error(sampler.estimate, exact.count)
            state = weight_fn.last_state
            action = weight_fn.last_action
            if prev_state is not None and state is not None:
                reward = prev_error - error
                self.agent.observe(prev_state, prev_action, reward, state)
                stats.transitions += 1
                stats.total_reward += reward
                since_update += 1
                can_update = (
                    learn
                    and self.agent.ready
                    and since_update >= update_every
                    and (max_updates is None or stats.updates < max_updates)
                )
                if can_update:
                    critic_loss, _ = self.agent.update()
                    stats.critic_losses.append(critic_loss)
                    stats.updates += 1
                    since_update = 0
            prev_state, prev_action, prev_error = state, action, error

        stats.final_error = prev_error if prev_error is not None else 0.0
        return stats
