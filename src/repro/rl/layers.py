"""Neural-network layers with explicit forward/backward passes.

Each layer implements the minimal module protocol used by the DDPG
networks: ``forward(x, training)`` caches what backward needs,
``backward(grad_output)`` accumulates parameter gradients and returns
the gradient w.r.t. the input, and ``parameters()`` exposes trainables.
Shapes are batch-first: inputs are ``(batch, features)``.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.rl.tensors import Parameter, glorot_uniform, zeros

__all__ = ["Module", "Linear", "ReLU", "BatchNorm1d", "Sequential"]


class Module(abc.ABC):
    """Base module: forward/backward with parameter access."""

    @abc.abstractmethod
    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        """Compute the layer output, caching intermediates if training."""

    @abc.abstractmethod
    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Accumulate parameter grads; return gradient w.r.t. input."""

    def parameters(self) -> list[Parameter]:
        """Trainable parameters (default: none)."""
        return []

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def __call__(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        return self.forward(x, training=training)


class Linear(Module):
    """Affine map y = x Wᵀ + b with W of shape (out, in)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        name: str = "linear",
    ) -> None:
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            glorot_uniform(in_features, out_features, rng), f"{name}.weight"
        )
        self.bias = Parameter(zeros(out_features), f"{name}.bias")
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if training:
            self._input = x
        return x @ self.weight.value.T + self.bias.value

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward(training=True)")
        self.weight.grad += grad_output.T @ self._input
        self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.value

    def parameters(self) -> list[Parameter]:
        return [self.weight, self.bias]


class ReLU(Module):
    """Elementwise max(x, 0)."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        mask = x > 0.0
        if training:
            self._mask = mask
        return x * mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward(training=True)")
        return grad_output * self._mask


class BatchNorm1d(Module):
    """Batch normalisation over the batch dimension.

    The paper applies batch normalisation before the critic's hidden
    activation "to avoid data scale issues" (Section V-A). Training mode
    normalises with batch statistics and tracks running estimates for
    evaluation mode.
    """

    def __init__(
        self,
        num_features: int,
        momentum: float = 0.1,
        eps: float = 1e-5,
        name: str = "batchnorm",
    ) -> None:
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features), f"{name}.gamma")
        self.beta = Parameter(zeros(num_features), f"{name}.beta")
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if training and x.shape[0] > 1:
            mean = x.mean(axis=0)
            var = x.var(axis=0)
            self.running_mean = (
                (1.0 - self.momentum) * self.running_mean + self.momentum * mean
            )
            self.running_var = (
                (1.0 - self.momentum) * self.running_var + self.momentum * var
            )
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        if training:
            self._cache = (x_hat, inv_std, np.asarray(x.shape[0] > 1))
        return self.gamma.value * x_hat + self.beta.value

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward(training=True)")
        x_hat, inv_std, batch_stats = self._cache
        n = grad_output.shape[0]
        self.gamma.grad += (grad_output * x_hat).sum(axis=0)
        self.beta.grad += grad_output.sum(axis=0)
        grad_x_hat = grad_output * self.gamma.value
        if not bool(batch_stats):
            # Running statistics were used; they are constants w.r.t. x.
            return grad_x_hat * inv_std
        return (
            inv_std
            / n
            * (
                n * grad_x_hat
                - grad_x_hat.sum(axis=0)
                - x_hat * (grad_x_hat * x_hat).sum(axis=0)
            )
        )

    def parameters(self) -> list[Parameter]:
        return [self.gamma, self.beta]

    def copy_state_from(self, other: "BatchNorm1d") -> None:
        """Copy running statistics (used when hard-copying to targets)."""
        self.running_mean = other.running_mean.copy()
        self.running_var = other.running_var.copy()


class Sequential(Module):
    """A chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        self.modules = list(modules)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        for module in self.modules:
            x = module.forward(x, training=training)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for module in reversed(self.modules):
            grad_output = module.backward(grad_output)
        return grad_output

    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        for module in self.modules:
            params.extend(module.parameters())
        return params
