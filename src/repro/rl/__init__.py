"""Reinforcement learning: from-scratch DDPG for the WSD-L weight policy."""

from repro.rl.ddpg import DDPGAgent, DDPGConfig
from repro.rl.mdp import AgentWeight, EpisodeStats, SamplingEpisode
from repro.rl.networks import ActorNetwork, CriticNetwork
from repro.rl.noise import GaussianNoise, NoiseProcess, OrnsteinUhlenbeckNoise
from repro.rl.optim import SGD, Adam
from repro.rl.policy import Policy
from repro.rl.replay import ReplayBuffer, TransitionBatch
from repro.rl.training import (
    TrainingConfig,
    TrainingResult,
    make_training_streams,
    train_weight_policy,
)

__all__ = [
    "DDPGAgent",
    "DDPGConfig",
    "AgentWeight",
    "EpisodeStats",
    "SamplingEpisode",
    "ActorNetwork",
    "CriticNetwork",
    "GaussianNoise",
    "OrnsteinUhlenbeckNoise",
    "NoiseProcess",
    "Adam",
    "SGD",
    "Policy",
    "ReplayBuffer",
    "TransitionBatch",
    "TrainingConfig",
    "TrainingResult",
    "make_training_streams",
    "train_weight_policy",
]
