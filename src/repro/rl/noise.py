"""Exploration noise processes for DDPG.

DDPG's deterministic policy needs external exploration noise during
training. :class:`GaussianNoise` (with optional decay) is the default;
:class:`OrnsteinUhlenbeckNoise` is the temporally correlated process the
original DDPG paper used, provided for completeness.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import ensure_rng

__all__ = ["NoiseProcess", "GaussianNoise", "OrnsteinUhlenbeckNoise"]


class NoiseProcess(abc.ABC):
    """A scalar noise source with a per-episode reset hook."""

    @abc.abstractmethod
    def sample(self) -> float:
        """Draw one noise value."""

    def reset(self) -> None:
        """Reset per-episode internal state (default: none)."""


class GaussianNoise(NoiseProcess):
    """Independent N(0, σ²) noise, with σ multiplied by ``decay`` per episode."""

    def __init__(
        self,
        sigma: float = 0.5,
        decay: float = 1.0,
        min_sigma: float = 0.01,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if sigma < 0.0:
            raise ConfigurationError(f"sigma must be >= 0, got {sigma}")
        if not 0.0 < decay <= 1.0:
            raise ConfigurationError(f"decay must be in (0, 1], got {decay}")
        self.sigma = sigma
        self.decay = decay
        self.min_sigma = min_sigma
        self.rng = ensure_rng(rng)

    def sample(self) -> float:
        return float(self.rng.normal(0.0, self.sigma))

    def reset(self) -> None:
        self.sigma = max(self.min_sigma, self.sigma * self.decay)


class OrnsteinUhlenbeckNoise(NoiseProcess):
    """OU process dx = θ(μ - x)dt + σ dW — temporally correlated noise."""

    def __init__(
        self,
        theta: float = 0.15,
        sigma: float = 0.3,
        mu: float = 0.0,
        dt: float = 1.0,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if theta <= 0.0 or sigma < 0.0 or dt <= 0.0:
            raise ConfigurationError("theta, dt must be > 0 and sigma >= 0")
        self.theta = theta
        self.sigma = sigma
        self.mu = mu
        self.dt = dt
        self.rng = ensure_rng(rng)
        self._x = mu

    def sample(self) -> float:
        dx = self.theta * (self.mu - self._x) * self.dt + self.sigma * np.sqrt(
            self.dt
        ) * self.rng.normal()
        self._x += dx
        return float(self._x)

    def reset(self) -> None:
        self._x = self.mu
