"""DDPG: deep deterministic policy gradient (Section IV-B).

The agent maintains a main actor μ(s; θ) and critic Q(s, a; φ) plus
slowly tracking target copies μ′ and Q′. Per update (Eqs. 28–30):

* critic loss  L(φ) = mean (y_i − Q(s_i, a_i; φ))² with targets
  y_i = r_i + γ · Q′(s_{i+1}, μ′(s_{i+1}; θ′); φ′);
* actor loss   L(θ) = −mean Q(s_i, μ(s_i; θ); φ), whose gradient flows
  through the critic's action input into the actor;
* Polyak soft updates of both targets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.rl.networks import ActorNetwork, CriticNetwork
from repro.rl.noise import GaussianNoise, NoiseProcess
from repro.rl.optim import Adam
from repro.rl.replay import ReplayBuffer
from repro.utils.rng import ensure_rng

__all__ = ["DDPGAgent", "DDPGConfig"]


@dataclass(frozen=True)
class DDPGConfig:
    """Hyper-parameters (defaults follow Section V-A)."""

    gamma: float = 0.99
    actor_lr: float = 1e-3
    critic_lr: float = 1e-3
    tau: float = 0.01
    batch_size: int = 128
    replay_capacity: int = 10_000
    critic_hidden: int = 10
    warmup: int = 256
    max_action: float = 1e6

    def validate(self) -> None:
        if not 0.0 <= self.gamma <= 1.0:
            raise ConfigurationError(f"gamma must be in [0, 1], got {self.gamma}")
        if not 0.0 < self.tau <= 1.0:
            raise ConfigurationError(f"tau must be in (0, 1], got {self.tau}")
        if self.batch_size < 1 or self.replay_capacity < self.batch_size:
            raise ConfigurationError(
                "need replay_capacity >= batch_size >= 1, got "
                f"{self.replay_capacity} / {self.batch_size}"
            )


class DDPGAgent:
    """Actor-critic agent with replay and target networks."""

    def __init__(
        self,
        state_dim: int,
        config: DDPGConfig | None = None,
        noise: NoiseProcess | None = None,
        rng: np.random.Generator | int | None = None,
        replay_rng: np.random.Generator | int | None = None,
    ) -> None:
        self.config = config or DDPGConfig()
        self.config.validate()
        self.rng = ensure_rng(rng)
        self.state_dim = state_dim

        self.actor = ActorNetwork(state_dim, self.rng)
        self.critic = CriticNetwork(
            state_dim, hidden=self.config.critic_hidden, rng=self.rng
        )
        self.target_actor = ActorNetwork(state_dim, self.rng)
        self.target_critic = CriticNetwork(
            state_dim, hidden=self.config.critic_hidden, rng=self.rng
        )
        self.target_actor.copy_from(self.actor)
        self.target_critic.copy_from(self.critic)

        self.actor_optim = Adam(self.actor.parameters(), lr=self.config.actor_lr)
        self.critic_optim = Adam(
            self.critic.parameters(), lr=self.config.critic_lr
        )
        # Replay sampling gets its own stream when the caller provides
        # one: with a shared ``rng``, adding or reordering any other
        # draw (an extra layer init, a fallback-noise sample) would
        # silently shift every subsequent mini-batch selection, breaking
        # seed-for-seed reproducibility of training runs across
        # otherwise-unrelated code changes.
        self.replay = ReplayBuffer(
            state_dim,
            capacity=self.config.replay_capacity,
            rng=self.rng if replay_rng is None else ensure_rng(replay_rng),
        )
        self.noise = noise or GaussianNoise(rng=self.rng)
        self.updates = 0

    # -- acting ------------------------------------------------------------------

    def act(self, state: np.ndarray, explore: bool = True) -> float:
        """Policy action for one state, plus exploration noise if training.

        Actions are clipped to (0, max_action]; the actor's +1 offset
        keeps the deterministic part >= 1, so clipping only tames noise.
        """
        action = self.actor.action(np.asarray(state, dtype=np.float64))
        if explore:
            action += self.noise.sample()
        return float(np.clip(action, 1e-3, self.config.max_action))

    # -- experience ----------------------------------------------------------------

    def observe(
        self,
        state: np.ndarray,
        action: float,
        reward: float,
        next_state: np.ndarray,
    ) -> None:
        """Store one transition in the replay memory."""
        self.replay.push(state, action, reward, next_state)

    @property
    def ready(self) -> bool:
        """Whether enough experience accumulated to start updating."""
        return len(self.replay) >= max(self.config.warmup, self.config.batch_size)

    # -- learning --------------------------------------------------------------------

    def update(self) -> tuple[float, float]:
        """One gradient update of critic then actor; returns their losses."""
        batch = self.replay.sample(self.config.batch_size)
        n = len(batch)

        # Critic targets y_i via the target networks (Eq. 29).
        next_actions = self.target_actor.forward(batch.next_states, training=False)
        next_q = self.target_critic.forward(
            batch.next_states, next_actions, training=False
        )
        targets = batch.rewards + self.config.gamma * next_q

        # Critic step: minimise MSE (Eq. 28).
        self.critic.zero_grad()
        q = self.critic.forward(batch.states, batch.actions, training=True)
        diff = q - targets
        critic_loss = float(np.mean(diff**2))
        self.critic.backward(2.0 * diff / n)
        self.critic_optim.step()

        # Actor step: maximise Q(s, μ(s)) (Eq. 30). Gradient flows from
        # the critic's action input into the actor.
        self.actor.zero_grad()
        self.critic.zero_grad()  # reuse the critic as a differentiable fn
        actions = self.actor.forward(batch.states, training=True)
        q_actor = self.critic.forward(batch.states, actions, training=True)
        actor_loss = float(-np.mean(q_actor))
        _, grad_actions = self.critic.backward(-np.ones_like(q_actor) / n)
        self.actor.backward(grad_actions)
        self.actor_optim.step()
        self.critic.zero_grad()  # discard critic grads from the actor pass

        # Soft target updates.
        self.target_actor.soft_update_from(self.actor, self.config.tau)
        self.target_critic.soft_update_from(self.critic, self.config.tau)
        self.updates += 1
        return critic_loss, actor_loss
