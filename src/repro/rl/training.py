"""End-to-end policy training: the Section V-A recipe.

The paper trains WSD-L per (dataset category, pattern, scenario): it
generates 10 edge-event streams from the training graph with the same
scenario parameters, then runs DDPG for 1,000 iterations over episodes
on those streams. :func:`train_weight_policy` reproduces that loop at a
configurable scale and returns the frozen :class:`~repro.rl.policy.Policy`
plus per-episode statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.graph.edges import Edge
from repro.graph.stream import EdgeStream
from repro.patterns.matching import get_pattern
from repro.rl.ddpg import DDPGAgent, DDPGConfig
from repro.rl.mdp import EpisodeStats, SamplingEpisode
from repro.rl.noise import GaussianNoise
from repro.rl.policy import Policy
from repro.streams.scenarios import build_stream
from repro.utils.rng import RngFactory, derive_seed, spawn_generators
from repro.weights.features import state_dimension

__all__ = ["TrainingConfig", "TrainingResult", "train_weight_policy", "make_training_streams"]


@dataclass(frozen=True)
class TrainingConfig:
    """Training hyper-parameters (paper defaults, scaled knobs exposed).

    ``iterations`` counts DDPG gradient updates (the paper's 1,000);
    ``num_streams`` is the number of training streams (the paper's 10);
    ``update_every`` spaces updates out over transitions so a small
    iteration budget still sees diverse experience.
    """

    iterations: int = 1_000
    num_streams: int = 10
    update_every: int = 4
    temporal_aggregation: str = "max"
    normalize: bool = True
    reward_scale: str = "relative"
    rank_fn: str = "inverse-uniform"
    noise_sigma: float = 2.0
    noise_decay: float = 0.9
    ddpg: DDPGConfig = field(default_factory=DDPGConfig)

    def validate(self) -> None:
        if self.iterations < 1:
            raise ConfigurationError("iterations must be >= 1")
        if self.num_streams < 1:
            raise ConfigurationError("num_streams must be >= 1")
        if self.update_every < 1:
            raise ConfigurationError("update_every must be >= 1")


@dataclass
class TrainingResult:
    """A trained policy plus the episode-by-episode training history."""

    policy: Policy
    episodes: list[EpisodeStats]
    total_updates: int

    @property
    def final_error(self) -> float:
        """Final-episode training error (relative by default)."""
        return self.episodes[-1].final_error if self.episodes else float("nan")


def make_training_streams(
    edges: list[Edge],
    scenario: str,
    num_streams: int,
    alpha: float | None = None,
    beta: float | None = None,
    seed: int = 0,
) -> list[EdgeStream]:
    """Generate ``num_streams`` streams with the same scenario parameters.

    Matches the paper: "we generate 10 different edge event streams with
    the same parameters ... and use these generated graphs for training".
    Each stream uses independent deletion randomness.
    """
    factory = RngFactory(seed)
    return [
        build_stream(
            edges, scenario, alpha=alpha, beta=beta,
            rng=factory.generator(f"training-stream-{i}"),
        )
        for i in range(num_streams)
    ]


def train_weight_policy(
    streams: list[EdgeStream],
    pattern: str,
    budget: int,
    config: TrainingConfig | None = None,
    seed: int = 0,
) -> TrainingResult:
    """Train a WSD-L weight policy on the given training streams.

    Episodes cycle over ``streams`` until ``config.iterations`` DDPG
    updates have happened. Returns the frozen policy (Eq. 27 actor) and
    the training history.
    """
    config = config or TrainingConfig()
    config.validate()
    if not streams:
        raise ConfigurationError("need at least one training stream")
    pat = get_pattern(pattern)
    dim = state_dimension(pat.num_edges)
    factory = RngFactory(seed)

    # One SeedSequence spawn per stochastic role: exploration noise,
    # network initialisation, and replay mini-batch selection each get
    # an independent child stream, so a fixed seed reproduces training
    # bit-for-bit and no role's draw count can perturb another's.
    noise_rng, agent_rng, replay_rng = spawn_generators(
        derive_seed(seed, "ddpg"), 3
    )
    agent = DDPGAgent(
        dim,
        config=config.ddpg,
        noise=GaussianNoise(
            sigma=config.noise_sigma,
            decay=config.noise_decay,
            rng=noise_rng,
        ),
        rng=agent_rng,
        replay_rng=replay_rng,
    )
    episode = SamplingEpisode(
        agent,
        pattern=pat,
        budget=budget,
        temporal_aggregation=config.temporal_aggregation,
        normalize=config.normalize,
        reward_scale=config.reward_scale,
        rank_fn=config.rank_fn,
    )

    history: list[EpisodeStats] = []
    total_updates = 0
    stream_idx = 0
    # Hard cap on episodes so degenerate streams (too few insertions to
    # ever fill the replay warmup) terminate rather than spin forever.
    max_episodes = max(4 * config.num_streams, 1 + config.iterations)
    while total_updates < config.iterations and len(history) < max_episodes:
        stream = streams[stream_idx % len(streams)]
        stream_idx += 1
        episode.rng = factory.generator(f"episode-{stream_idx}")
        stats = episode.run(
            stream,
            explore=True,
            learn=True,
            update_every=config.update_every,
            max_updates=config.iterations - total_updates,
        )
        total_updates += stats.updates
        history.append(stats)
        if stats.transitions == 0:
            break  # stream has < 2 insertions; nothing to learn from

    policy = Policy.from_actor(
        agent.actor,
        metadata={
            "pattern": pat.name,
            "state_dim": dim,
            "temporal_aggregation": config.temporal_aggregation,
            "normalize": config.normalize,
            "iterations": total_updates,
            "num_streams": len(streams),
        },
    )
    return TrainingResult(policy=policy, episodes=history,
                          total_updates=total_updates)
