"""The actor and critic networks of WSD-L (Section IV-B, V-A).

* :class:`ActorNetwork` — Eq. (27): a = σ(W s + b) with σ = ReLU, plus
  one ("we add one to the output to avoid assigning zero weights").
  Deterministic policy, scalar action (the edge weight).
* :class:`CriticNetwork` — Q(s, a): input layer over [s, a], a hidden
  layer of 10 neurons with batch normalisation before the ReLU
  activation, and a scalar output layer.
"""

from __future__ import annotations

import numpy as np

from repro.rl.layers import BatchNorm1d, Linear, ReLU, Sequential
from repro.rl.tensors import Parameter

__all__ = ["ActorNetwork", "CriticNetwork"]


class ActorNetwork:
    """μ(s; θ) = ReLU(W s + b) + 1, the deterministic policy."""

    def __init__(self, state_dim: int, rng: np.random.Generator) -> None:
        self.state_dim = state_dim
        self.linear = Linear(state_dim, 1, rng, name="actor")
        self.relu = ReLU()

    def forward(self, states: np.ndarray, training: bool = True) -> np.ndarray:
        """Map ``(batch, state_dim)`` states to ``(batch, 1)`` actions."""
        pre = self.linear.forward(states, training=training)
        return self.relu.forward(pre, training=training) + 1.0

    def backward(self, grad_actions: np.ndarray) -> np.ndarray:
        """Backprop through the actor; returns gradient w.r.t. states."""
        return self.linear.backward(self.relu.backward(grad_actions))

    def parameters(self) -> list[Parameter]:
        return self.linear.parameters()

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def action(self, state: np.ndarray) -> float:
        """Scalar action for a single (unbatched) state."""
        out = self.forward(state.reshape(1, -1), training=False)
        return float(out[0, 0])

    def copy_from(self, other: "ActorNetwork") -> None:
        for mine, theirs in zip(self.parameters(), other.parameters()):
            mine.copy_from(theirs)

    def soft_update_from(self, other: "ActorNetwork", tau: float) -> None:
        for mine, theirs in zip(self.parameters(), other.parameters()):
            mine.soft_update_from(theirs, tau)


class CriticNetwork:
    """Q(s, a; φ): Linear(|s|+1 → 10) → BatchNorm → ReLU → Linear(10 → 1)."""

    def __init__(
        self,
        state_dim: int,
        hidden: int = 10,
        rng: np.random.Generator | None = None,
    ) -> None:
        if rng is None:
            rng = np.random.default_rng()
        self.state_dim = state_dim
        self.hidden = hidden
        self._bn = BatchNorm1d(hidden, name="critic.bn")
        self.net = Sequential(
            Linear(state_dim + 1, hidden, rng, name="critic.hidden"),
            self._bn,
            ReLU(),
            Linear(hidden, 1, rng, name="critic.out"),
        )
        self._input_width = state_dim + 1

    def forward(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        training: bool = True,
    ) -> np.ndarray:
        """Q-values of shape ``(batch, 1)`` for state/action batches."""
        if actions.ndim == 1:
            actions = actions.reshape(-1, 1)
        x = np.concatenate([states, actions], axis=1)
        return self.net.forward(x, training=training)

    def backward(self, grad_q: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Backprop; returns (grad_states, grad_actions)."""
        grad_input = self.net.backward(grad_q)
        return grad_input[:, : self.state_dim], grad_input[:, self.state_dim:]

    def parameters(self) -> list[Parameter]:
        return self.net.parameters()

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def copy_from(self, other: "CriticNetwork") -> None:
        for mine, theirs in zip(self.parameters(), other.parameters()):
            mine.copy_from(theirs)
        self._bn.copy_state_from(other._bn)

    def soft_update_from(self, other: "CriticNetwork", tau: float) -> None:
        for mine, theirs in zip(self.parameters(), other.parameters()):
            mine.soft_update_from(theirs, tau)
        # Running statistics follow the main network directly.
        self._bn.copy_state_from(other._bn)
