"""Checkpointed estimate-vs-truth traces.

:class:`EstimateTrace` drives a sampler and an exact counter over the
same stream, recording both values at evenly spaced checkpoints. It is
the measurement core behind every ARE/MARE cell in the paper tables and
the per-time-step series of the figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.estimators.metrics import (
    absolute_relative_error,
    mean_absolute_relative_error,
)
from repro.graph.stream import EdgeStream
from repro.patterns.exact import ExactCounter
from repro.samplers.base import SubgraphCountingSampler
from repro.utils.timer import Stopwatch

__all__ = ["EstimateTrace", "run_with_trace"]


@dataclass
class EstimateTrace:
    """Paired (estimate, truth) samples along one stream run."""

    checkpoints: list[int] = field(default_factory=list)
    estimates: list[float] = field(default_factory=list)
    truths: list[int] = field(default_factory=list)
    #: Wall-clock seconds spent inside the sampler (truth excluded).
    sampler_seconds: float = 0.0

    @property
    def final_estimate(self) -> float:
        if not self.estimates:
            raise ConfigurationError("empty trace")
        return self.estimates[-1]

    @property
    def final_truth(self) -> int:
        if not self.truths:
            raise ConfigurationError("empty trace")
        return self.truths[-1]

    def are(self) -> float:
        """ARE (%) at the last checkpoint."""
        return absolute_relative_error(self.final_estimate, self.final_truth)

    def mare(self) -> float:
        """MARE (%) across all checkpoints."""
        return mean_absolute_relative_error(self.estimates, self.truths)


def run_with_trace(
    sampler: SubgraphCountingSampler,
    stream: EdgeStream,
    num_checkpoints: int = 50,
    exact: ExactCounter | None = None,
) -> EstimateTrace:
    """Run ``sampler`` over ``stream`` recording a checkpoint trace.

    The exact counter may be shared across trials via ``exact`` — pass a
    *fresh* counter (or None to build one); it is consumed by the run.
    Only sampler time is accumulated into ``sampler_seconds`` so timing
    comparisons are not polluted by ground-truth bookkeeping.
    """
    if num_checkpoints < 1:
        raise ConfigurationError("num_checkpoints must be >= 1")
    if exact is None:
        exact = ExactCounter(sampler.pattern)
    trace = EstimateTrace()
    n = len(stream)
    if n == 0:
        raise ConfigurationError("cannot trace an empty stream")
    step = max(1, n // num_checkpoints)
    watch = Stopwatch()
    for i, event in enumerate(stream, start=1):
        with watch:
            sampler.process(event)
        exact.process(event)
        if i % step == 0 or i == n:
            trace.checkpoints.append(i)
            trace.estimates.append(sampler.estimate)
            trace.truths.append(exact.count)
    trace.sampler_seconds = watch.elapsed
    return trace
