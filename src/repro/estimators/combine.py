"""Combiners that merge partial estimates from sampler replicas.

The sharded stream executor (:mod:`repro.streams.executor`) runs N
independent sampler replicas and needs to fuse their partial estimates
into one number. Three combiners cover its two execution modes:

* :func:`combine_mean` — the plain average. For **broadcast** replicas
  (every replica sees the whole stream with independent randomness)
  each partial estimate is unbiased for the global count, so the mean
  is unbiased with variance reduced by 1/N.
* :func:`combine_variance_weighted` — inverse-variance weighting, the
  minimum-variance unbiased linear combination when per-replica
  variance estimates are available (e.g. from
  :func:`repro.estimators.variance.repeated_trials` per replica).
  Degenerate (zero/non-finite) variances fall back to the mean.
* :func:`combine_partition` — the **hash-partition** merge. When the
  stream is partitioned uniformly by edge hash, an instance with |H|
  edges survives inside one shard iff its |H| - 1 remaining edges land
  in the same shard as the first, so

      E[Σ_i c_i(t)] = |J(t)| / N^{|H| - 1}

  and the unbiased merge is ``N^{|H|-1} · Σ_i c_i(t)``.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.errors import ConfigurationError

__all__ = [
    "combine_mean",
    "combine_variance_weighted",
    "combine_partition",
]


def combine_mean(estimates: Sequence[float]) -> float:
    """Average of per-replica estimates (broadcast-mode merge)."""
    if not estimates:
        raise ConfigurationError("need at least one estimate to combine")
    return math.fsum(estimates) / len(estimates)


def combine_variance_weighted(
    estimates: Sequence[float],
    variances: Sequence[float],
) -> float:
    """Inverse-variance weighted mean of per-replica estimates.

    ``variances[i]`` is an estimate of Var[estimates[i]]; the weights
    are 1/variance, the minimum-variance unbiased linear combination of
    independent unbiased estimators. Replicas reporting non-positive or
    non-finite variance make the weighting ill-defined, so the combiner
    falls back to the plain mean in that case (every estimator here is
    unbiased, so the fallback stays correct — just not minimum
    variance).
    """
    if not estimates:
        raise ConfigurationError("need at least one estimate to combine")
    if len(estimates) != len(variances):
        raise ConfigurationError(
            f"{len(estimates)} estimates but {len(variances)} variances"
        )
    if any(not math.isfinite(v) or v <= 0.0 for v in variances):
        return combine_mean(estimates)
    inverse = [1.0 / v for v in variances]
    total = math.fsum(inverse)
    return math.fsum(w * e for w, e in zip(inverse, estimates)) / total


def combine_partition(
    estimates: Sequence[float],
    num_shards: int,
    pattern_edges: int,
) -> float:
    """Merge shard-local estimates of a hash-partitioned stream.

    ``pattern_edges`` is |H|. With a uniform edge hash, the |H| - 1
    other edges of an instance co-locate with its first edge with
    probability 1/N^{|H|-1}, so the sum of shard-local estimates is
    scaled back up by N^{|H|-1}.
    """
    if not estimates:
        raise ConfigurationError("need at least one estimate to combine")
    if num_shards < 1:
        raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
    if len(estimates) != num_shards:
        raise ConfigurationError(
            f"{len(estimates)} estimates for {num_shards} shards"
        )
    if pattern_edges < 1:
        raise ConfigurationError(
            f"pattern_edges must be >= 1, got {pattern_edges}"
        )
    return float(num_shards ** (pattern_edges - 1)) * math.fsum(estimates)
