"""Local (per-vertex / per-edge) subgraph count estimation.

The paper's motivating applications — spammer detection via
triangle-to-degree ratios, clustering coefficients — need *local*
counts: how many instances contain a given vertex or edge. The global
estimators of this library already see every counted instance together
with its Horvitz-Thompson value; :class:`LocalSubgraphCounter` taps that
stream through the ``instance_observers`` hook and accumulates unbiased
local estimates, exactly how Triest-local / Mascot define local counts.

Usage::

    sampler = WSD("triangle", budget, GPSHeuristicWeight(), rng=0)
    local = LocalSubgraphCounter()
    local.attach(sampler)
    sampler.process_stream(stream)
    local.vertex_estimate(v)       # triangles containing v
    local.top_vertices(10)         # heaviest vertices
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.graph.edges import Edge, Vertex
from repro.patterns.base import Instance
from repro.samplers.base import SubgraphCountingSampler

__all__ = ["LocalSubgraphCounter"]


class LocalSubgraphCounter:
    """Accumulates per-vertex and per-edge instance estimates.

    Every estimator contribution (one instance, value = product of
    inverse inclusion probabilities, negative on destruction) is
    credited to each vertex and each edge of the instance. Since each
    contribution is an unbiased increment of the global count, the
    per-vertex sums are unbiased estimates of the number of instances
    containing that vertex.
    """

    def __init__(self, track_edges: bool = False) -> None:
        self._vertex: dict[Vertex, float] = defaultdict(float)
        self._edge: dict[Edge, float] = defaultdict(float)
        self.track_edges = track_edges

    # -- observer protocol ----------------------------------------------------

    def __call__(self, trigger: Edge, instance: Instance, value: float) -> None:
        vertices = {trigger[0], trigger[1]}
        for a, b in instance:
            vertices.add(a)
            vertices.add(b)
        for vertex in vertices:
            self._vertex[vertex] += value
        if self.track_edges:
            self._edge[trigger] += value
            for edge in instance:
                self._edge[edge] += value

    def attach(self, sampler: SubgraphCountingSampler) -> "LocalSubgraphCounter":
        """Register on a sampler's observer list; returns self."""
        sampler.instance_observers.append(self)
        return self

    # -- queries ----------------------------------------------------------------

    def vertex_estimate(self, vertex: Vertex) -> float:
        """Estimated number of instances containing ``vertex``."""
        return self._vertex.get(vertex, 0.0)

    def edge_estimate(self, edge: Edge) -> float:
        """Estimated number of instances containing ``edge``.

        Requires ``track_edges=True``.
        """
        return self._edge.get(edge, 0.0)

    def top_vertices(self, k: int = 10) -> list[tuple[Vertex, float]]:
        """The ``k`` vertices with the largest estimated local counts.

        Selects the top k with a columnar partial sort
        (``numpy.argpartition`` over the value column) instead of
        sorting all n tracked vertices — O(n + k log k), which matters
        for the anomaly-detection workloads that track every vertex of
        a large stream but report a short leaderboard.
        """
        n = len(self._vertex)
        if k >= n:
            return sorted(self._vertex.items(), key=lambda item: -item[1])
        labels = list(self._vertex.keys())
        values = np.fromiter(
            self._vertex.values(), dtype=np.float64, count=n
        )
        top = np.argpartition(-values, k)[:k]
        top = top[np.argsort(-values[top], kind="stable")]
        return [(labels[i], float(values[i])) for i in top]

    def vertices(self) -> list[Vertex]:
        """Vertices with a non-trivial local estimate."""
        return list(self._vertex)

    # -- persistence -------------------------------------------------------------

    def vertex_estimates(self) -> dict[Vertex, float]:
        """A plain-dict copy of every per-vertex accumulator.

        The persistence hook: local accumulators live outside the
        sampler's checkpoint state, so a service checkpointing a stream
        with local tracking exports them here and reloads them with
        :meth:`load_vertex_estimates`.
        """
        return dict(self._vertex)

    def load_vertex_estimates(self, counts: dict[Vertex, float]) -> None:
        """Replace the per-vertex accumulators (checkpoint restore)."""
        self._vertex = defaultdict(float, counts)

    def reset(self) -> None:
        self._vertex.clear()
        self._edge.clear()

    def __len__(self) -> int:
        return len(self._vertex)
