"""Estimation metrics, local counting, variance analysis, and traces."""

from repro.estimators.combine import (
    combine_mean,
    combine_partition,
    combine_variance_weighted,
)
from repro.estimators.local import LocalSubgraphCounter
from repro.estimators.metrics import (
    absolute_relative_error,
    mean_absolute_relative_error,
)
from repro.estimators.tracker import EstimateTrace, run_with_trace
from repro.estimators.variance import (
    TrialSummary,
    bootstrap_confidence_interval,
    normal_confidence_interval,
    repeated_trials,
    summarize_trials,
)

__all__ = [
    "absolute_relative_error",
    "mean_absolute_relative_error",
    "combine_mean",
    "combine_partition",
    "combine_variance_weighted",
    "EstimateTrace",
    "run_with_trace",
    "LocalSubgraphCounter",
    "TrialSummary",
    "repeated_trials",
    "normal_confidence_interval",
    "bootstrap_confidence_interval",
    "summarize_trials",
]
