"""Repeated-trial variance analysis and confidence intervals.

The paper reports means over 100 sampling repetitions. This module
provides the matching analysis tools: run a sampler factory repeatedly
over one stream, and summarise the estimate distribution with normal
and percentile-bootstrap confidence intervals plus the coefficient of
variation (the natural scale-free accuracy measure for unbiased
estimators).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.stream import EdgeStream
from repro.samplers.base import SubgraphCountingSampler
from repro.utils.rng import RngFactory, ensure_rng

__all__ = [
    "TrialSummary",
    "repeated_trials",
    "normal_confidence_interval",
    "bootstrap_confidence_interval",
    "summarize_trials",
]


@dataclass(frozen=True)
class TrialSummary:
    """Distribution summary of repeated independent estimates."""

    estimates: tuple[float, ...]
    mean: float
    std: float
    stderr: float
    ci_low: float
    ci_high: float
    level: float

    @property
    def coefficient_of_variation(self) -> float:
        """std / |mean| — the scale-free spread of an unbiased estimator."""
        if self.mean == 0.0:
            return float("inf")
        return self.std / abs(self.mean)

    def covers(self, truth: float) -> bool:
        """Whether the confidence interval contains ``truth``."""
        return self.ci_low <= truth <= self.ci_high


def repeated_trials(
    sampler_factory: Callable[[np.random.Generator], SubgraphCountingSampler],
    stream: EdgeStream,
    trials: int,
    seed: int = 0,
) -> list[float]:
    """Run ``trials`` independent samplers over ``stream``.

    ``sampler_factory`` receives a fresh deterministic generator per
    trial and must return a new sampler.
    """
    if trials < 1:
        raise ConfigurationError("trials must be >= 1")
    factory = RngFactory(seed)
    estimates = []
    for trial in range(trials):
        sampler = sampler_factory(factory.generator(f"trial-{trial}"))
        estimates.append(sampler.process_stream(stream))
    return estimates


def normal_confidence_interval(
    estimates: Sequence[float], level: float = 0.95
) -> tuple[float, float]:
    """Normal-approximation CI for the mean of the estimates."""
    if not 0.0 < level < 1.0:
        raise ConfigurationError(f"level must be in (0, 1), got {level}")
    if len(estimates) < 2:
        raise ConfigurationError("need at least 2 estimates")
    arr = np.asarray(estimates, dtype=np.float64)
    mean = float(arr.mean())
    stderr = float(arr.std(ddof=1) / np.sqrt(len(arr)))
    # Two-sided normal quantile without scipy: Acklam-style inverse via
    # numpy's erfinv equivalent. sqrt(2) * erfinv(level) == z.
    z = float(np.sqrt(2.0) * _erfinv(level))
    return mean - z * stderr, mean + z * stderr


def _erfinv(x: float) -> float:
    """Inverse error function (Winitzki's approximation, |err| < 5e-3)."""
    a = 0.147
    sign = 1.0 if x >= 0 else -1.0
    ln_term = np.log(1.0 - x * x)
    first = 2.0 / (np.pi * a) + ln_term / 2.0
    return sign * float(
        np.sqrt(np.sqrt(first * first - ln_term / a) - first)
    )


def bootstrap_confidence_interval(
    estimates: Sequence[float],
    level: float = 0.95,
    resamples: int = 2_000,
    rng: np.random.Generator | int | None = None,
) -> tuple[float, float]:
    """Percentile bootstrap CI for the mean of the estimates."""
    if not 0.0 < level < 1.0:
        raise ConfigurationError(f"level must be in (0, 1), got {level}")
    if len(estimates) < 2:
        raise ConfigurationError("need at least 2 estimates")
    gen = ensure_rng(rng)
    arr = np.asarray(estimates, dtype=np.float64)
    idx = gen.integers(0, len(arr), size=(resamples, len(arr)))
    means = arr[idx].mean(axis=1)
    alpha = (1.0 - level) / 2.0
    return (
        float(np.quantile(means, alpha)),
        float(np.quantile(means, 1.0 - alpha)),
    )


def summarize_trials(
    estimates: Sequence[float],
    level: float = 0.95,
    method: str = "normal",
    rng: np.random.Generator | int | None = None,
) -> TrialSummary:
    """Summarise repeated estimates with a CI (``normal`` or ``bootstrap``)."""
    if method == "normal":
        low, high = normal_confidence_interval(estimates, level)
    elif method == "bootstrap":
        low, high = bootstrap_confidence_interval(estimates, level, rng=rng)
    else:
        raise ConfigurationError(
            f"method must be 'normal' or 'bootstrap', got {method!r}"
        )
    arr = np.asarray(estimates, dtype=np.float64)
    return TrialSummary(
        estimates=tuple(float(e) for e in arr),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)),
        stderr=float(arr.std(ddof=1) / np.sqrt(len(arr))),
        ci_low=low,
        ci_high=high,
        level=level,
    )
