"""Error metrics (Section V-A): ARE and MARE.

* **ARE** — absolute relative error at the end of the stream:
  |X̂ − X| / X · 100%.
* **MARE** — mean absolute relative error over checkpoints:
  (1/T) Σ |X̂_t − X_t| / X_t · 100%.

Checkpoints with zero ground truth are skipped (the relative error is
undefined there); the paper's streams never hit zero counts at its
scale, ours can during massive deletions.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["absolute_relative_error", "mean_absolute_relative_error"]


def absolute_relative_error(estimate: float, truth: float) -> float:
    """ARE in percent. Raises if the ground truth is zero."""
    if truth == 0:
        raise ConfigurationError(
            "ARE undefined for zero ground truth; choose a checkpoint with "
            "a non-zero count"
        )
    return abs(estimate - truth) / abs(truth) * 100.0


def mean_absolute_relative_error(
    estimates: Sequence[float], truths: Sequence[float]
) -> float:
    """MARE in percent over paired checkpoint traces.

    Checkpoints with zero truth are skipped; raises if every checkpoint
    has zero truth or the traces' lengths differ.
    """
    if len(estimates) != len(truths):
        raise ConfigurationError(
            f"trace lengths differ: {len(estimates)} vs {len(truths)}"
        )
    est = np.asarray(estimates, dtype=np.float64)
    tru = np.asarray(truths, dtype=np.float64)
    mask = tru != 0.0
    if not mask.any():
        raise ConfigurationError("MARE undefined: all checkpoints have zero truth")
    return float(np.mean(np.abs(est[mask] - tru[mask]) / np.abs(tru[mask])) * 100.0)
