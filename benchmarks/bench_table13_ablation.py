"""Table XIII: WSD-L (Max) vs WSD-L (Avg) vs WSD-H ablation."""

from conftest import run_once

from repro.experiments.tables import table_ablation


def test_table13_ablation(benchmark, policy_store, save_result):
    result = run_once(
        benchmark,
        lambda: table_ablation(trials=5, seed=0, policy_store=policy_store),
    )
    save_result("table13_ablation", result.format())
    assert result.raw
