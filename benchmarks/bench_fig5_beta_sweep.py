"""Figure 5: ARE vs beta_m and beta_l sweeps on cit-PT."""

from conftest import run_once

from repro.experiments.figures import figure_beta_sweep


def test_fig5_beta_sweep(benchmark, policy_store, save_result):
    results = run_once(
        benchmark,
        lambda: figure_beta_sweep(
            trials=5, seed=0, policy_store=policy_store
        ),
    )
    text = "\n\n".join(
        results[name].format() for name in ("massive", "light")
    )
    save_result("fig5_beta_sweep", text)
    assert len(results["massive"].series["WSD-L"]) == 5
    assert len(results["light"].series["WSD-L"]) == 5
