"""Figure 3: scalability (ARE & time vs stream size), light deletion."""

from conftest import run_once

from repro.experiments.figures import figure_scalability


def test_fig3_scalability_light(benchmark, policy_store, save_result):
    result = run_once(
        benchmark,
        lambda: figure_scalability(
            "light", trials=3, seed=0, policy_store=policy_store
        ),
    )
    save_result("fig3_scalability_light", result.format())
    times = result.ys("WSD-H time (s)")
    assert times[-1] > times[0]
