"""Table III: counting triangles under the massive deletion scenario."""

from conftest import run_once

from repro.experiments.tables import table_counts


def test_table03_triangles_massive(benchmark, policy_store, save_result):
    result = run_once(
        benchmark,
        lambda: table_counts(
            "triangle", "massive", trials=5, seed=0, policy_store=policy_store
        ),
    )
    save_result("table03_triangles_massive", result.format())
    for dataset in result.raw["ARE (%)"]:
        assert result.value("Time (s)", dataset, "WSD-H") > 0.0
