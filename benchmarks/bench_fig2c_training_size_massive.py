"""Figure 2(c): training time and ARE vs training-graph size, massive."""

from conftest import run_once

from repro.experiments.figures import figure_training_size


def test_fig2c_training_size_massive(benchmark, save_result):
    result = run_once(
        benchmark, lambda: figure_training_size("massive", seed=0)
    )
    save_result("fig2c_training_size_massive", result.format())
    times = result.ys("train time (s)")
    # Training cost grows with the training-graph size.
    assert times[-1] > times[0]
