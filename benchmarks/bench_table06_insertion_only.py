"""Table VI: the insertion-only scenario on cit-PT."""

from conftest import run_once

from repro.experiments.tables import table_insertion_only


def test_table06_insertion_only(benchmark, policy_store, save_result):
    result = run_once(
        benchmark,
        lambda: table_insertion_only(
            trials=5, seed=0, policy_store=policy_store
        ),
    )
    save_result("table06_insertion_only", result.format())
    assert result.value("ARE (%)", "ARE (%)", "GPS") >= 0.0
