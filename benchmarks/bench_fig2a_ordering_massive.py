"""Figure 2(a): ARE under natural/UAR/RBFS orderings, massive deletion."""

from conftest import run_once

from repro.experiments.figures import figure_ordering


def test_fig2a_ordering_massive(benchmark, policy_store, save_result):
    result = run_once(
        benchmark,
        lambda: figure_ordering(
            "massive", trials=5, seed=0, policy_store=policy_store
        ),
    )
    save_result("fig2a_ordering_massive", result.format())
    assert len(result.series["WSD-L"]) == 3
