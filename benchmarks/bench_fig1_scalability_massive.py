"""Figure 1: scalability (ARE & time vs stream size), massive deletion."""

from conftest import run_once

from repro.experiments.figures import figure_scalability


def test_fig1_scalability_massive(benchmark, policy_store, save_result):
    result = run_once(
        benchmark,
        lambda: figure_scalability(
            "massive", trials=3, seed=0, policy_store=policy_store
        ),
    )
    save_result("fig1_scalability_massive", result.format())
    times = result.ys("WSD-L time (s)")
    # Running time grows with the stream (linear complexity, Theorem 5).
    assert times[-1] > times[0]
