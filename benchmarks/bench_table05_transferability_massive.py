"""Table V: transferability of WSD-L policies, massive deletion."""

from conftest import run_once

from repro.experiments.tables import table_transferability


def test_table05_transferability_massive(benchmark, policy_store, save_result):
    result = run_once(
        benchmark,
        lambda: table_transferability(
            "massive", trials=5, seed=0, policy_store=policy_store
        ),
    )
    save_result("table05_transferability_massive", result.format())
    assert result.raw["ARE (%)"]
