"""Extension ablation: inverse-uniform (w/u) vs exponential (u^{1/w}) ranks.

Not a paper table — DESIGN.md lists the rank family as the one degree of
freedom the WSD framework leaves open (any monotone rank family with a
closed-form inclusion probability yields an unbiased estimator). This
bench compares the paper's w/u ranks against Efraimidis–Spirakis
exponential ranks under identical weights and budgets.
"""

from conftest import run_once

from repro.estimators.metrics import absolute_relative_error
from repro.experiments.config import LIGHT, ExperimentConfig
from repro.experiments.runner import compute_ground_truth
from repro.samplers.wsd import WSD
from repro.utils.rng import RngFactory
from repro.utils.tables import format_table
from repro.weights.heuristic import GPSHeuristicWeight


def _run():
    import numpy as np

    rows = []
    for dataset in ("cit-PT", "com-YT", "web-GL"):
        config = ExperimentConfig(
            dataset=dataset, scenario=LIGHT, trials=5, seed=0
        )
        stream = config.build_stream()
        truth = compute_ground_truth(stream, "triangle", config.checkpoints)
        budget = config.effective_budget(stream)
        factory = RngFactory(0)
        cells = {}
        for rank_fn in ("inverse-uniform", "exponential"):
            ares = []
            for trial in range(config.trials):
                sampler = WSD(
                    "triangle", budget, GPSHeuristicWeight(),
                    rank_fn=rank_fn,
                    rng=factory.generator(f"{dataset}-{rank_fn}-{trial}"),
                )
                estimate = sampler.process_stream(stream)
                ares.append(
                    absolute_relative_error(estimate, truth.final_truth)
                )
            cells[rank_fn] = float(np.mean(ares))
        rows.append([dataset, cells["inverse-uniform"], cells["exponential"]])
    return rows


def test_ablation_rank_functions(benchmark, save_result):
    rows = run_once(benchmark, _run)
    text = format_table(
        ["Graph", "w/u ranks (paper)", "exponential ranks"],
        rows,
        title="WSD-H ARE (%) by rank family (light deletion, triangles)",
    )
    save_result("ablation_rank_functions", text)
    assert all(row[1] >= 0.0 and row[2] >= 0.0 for row in rows)
