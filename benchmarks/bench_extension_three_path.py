"""Extension: counting 3-paths (a pattern beyond the paper's three).

WSD's estimator is pattern-agnostic (Theorem 4 only uses |H|); this
bench exercises the full algorithm column on the 3-path pattern added
by this library, demonstrating that new patterns drop in without
touching any sampler.
"""

from conftest import run_once

from repro.experiments.config import LIGHT, ExperimentConfig
from repro.experiments.runner import compute_ground_truth, run_algorithm
from repro.utils.tables import format_table

ALGORITHMS = ("WSD-H", "GPS-A", "Triest", "ThinkD", "WRS")


def _run():
    rows = []
    for dataset in ("cit-PT", "web-GL"):
        config = ExperimentConfig(
            dataset=dataset, pattern="3-path", scenario=LIGHT,
            trials=3, seed=0,
        )
        stream = config.build_stream()
        truth = compute_ground_truth(stream, "3-path", config.checkpoints)
        budget = config.effective_budget(stream)
        row = [dataset]
        for algorithm in ALGORITHMS:
            result = run_algorithm(
                algorithm, stream, truth, "3-path", budget,
                trials=config.trials, seed=0,
            )
            row.append(result.mean_are)
        rows.append(row)
    return rows


def test_extension_three_path(benchmark, save_result):
    rows = run_once(benchmark, _run)
    text = format_table(
        ["Graph", *ALGORITHMS], rows,
        title="Counting 3-paths under light deletion (ARE %, extension)",
    )
    save_result("extension_three_path", text)
    assert all(v >= 0.0 for row in rows for v in row[1:])
