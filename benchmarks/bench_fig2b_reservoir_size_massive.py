"""Figure 2(b): ARE vs reservoir size M (1-5% of |E|), massive deletion."""

from conftest import run_once

from repro.experiments.figures import figure_reservoir_size


def test_fig2b_reservoir_size_massive(benchmark, policy_store, save_result):
    result = run_once(
        benchmark,
        lambda: figure_reservoir_size(
            "massive", trials=5, seed=0, policy_store=policy_store
        ),
    )
    save_result("fig2b_reservoir_size_massive", result.format())
    # Massive-scenario ARE at this scale is noisy per-point; check the
    # sweep produced a full, finite series per algorithm (the shape
    # comparison lives in EXPERIMENTS.md).
    for name in result.series:
        ys = result.ys(name)
        assert len(ys) == 5
        assert all(y >= 0.0 for y in ys)
