"""Table VIII: counting wedges under the light deletion scenario."""

from conftest import run_once

from repro.experiments.tables import table_counts


def test_table08_wedges_light(benchmark, policy_store, save_result):
    result = run_once(
        benchmark,
        lambda: table_counts(
            "wedge", "light", trials=5, seed=0, policy_store=policy_store
        ),
    )
    save_result("table08_wedges_light", result.format())
    assert result.raw["MARE (%)"]
