"""Figure 2(d): learned edge weight vs per-edge triangle count, massive."""

from conftest import run_once

from repro.experiments.figures import figure_weight_relationship


def test_fig2d_weight_relationship_massive(benchmark, policy_store, save_result):
    result = run_once(
        benchmark,
        lambda: figure_weight_relationship(
            "massive", runs=10, seed=0, policy_store=policy_store
        ),
    )
    save_result("fig2d_weight_relationship_massive", result.format())
    series = result.series["mean weight"]
    assert len(series) >= 2
