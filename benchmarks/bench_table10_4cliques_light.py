"""Table X: counting 4-cliques under the light deletion scenario."""

from conftest import run_once

from repro.experiments.tables import table_counts


def test_table10_4cliques_light(benchmark, policy_store, save_result):
    result = run_once(
        benchmark,
        lambda: table_counts(
            "4-clique", "light", trials=5, seed=0, policy_store=policy_store
        ),
    )
    save_result("table10_4cliques_light", result.format())
    assert result.raw["ARE (%)"]
