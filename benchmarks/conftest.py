"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one paper table/figure at this reproduction's
scale, times it with pytest-benchmark (single round — these are
experiments, not micro-benchmarks), prints the result, and writes it to
``benchmarks/results/`` so EXPERIMENTS.md can reference the artefacts.

WSD-L policies are trained once per (dataset, pattern, scenario, β) and
cached on disk under ``benchmarks/.policy_cache/`` to keep reruns fast.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.algorithms import PolicyStore

RESULTS_DIR = Path(__file__).parent / "results"
CACHE_DIR = Path(__file__).parent / ".policy_cache"


@pytest.fixture(scope="session")
def policy_store() -> PolicyStore:
    """Session-wide policy store with on-disk caching."""
    CACHE_DIR.mkdir(exist_ok=True)
    return PolicyStore(iterations=300, num_streams=4, cache_dir=CACHE_DIR)


@pytest.fixture(scope="session")
def save_result():
    """Write a formatted table/figure to benchmarks/results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print()
        print(text)

    return _save


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
