"""Table XI: training time (triangles & wedges) under light deletion."""

from conftest import run_once

from repro.experiments.tables import table_training_time


def test_table11_training_time_light(benchmark, save_result):
    result = run_once(
        benchmark, lambda: table_training_time("light", iterations=300)
    )
    save_result("table11_training_time_light", result.format())
    assert result.raw["Time (s)"]
