"""Table IV: training time (triangles & wedges) under massive deletion."""

from conftest import run_once

from repro.experiments.tables import table_training_time


def test_table04_training_time_massive(benchmark, save_result):
    result = run_once(
        benchmark, lambda: table_training_time("massive", iterations=300)
    )
    save_result("table04_training_time_massive", result.format())
    for dataset in result.raw["Time (s)"]:
        assert result.value("Time (s)", dataset, "triangle") > 0.0
