"""Table XII: transferability of WSD-L policies, light deletion."""

from conftest import run_once

from repro.experiments.tables import table_transferability


def test_table12_transferability_light(benchmark, policy_store, save_result):
    result = run_once(
        benchmark,
        lambda: table_transferability(
            "light", trials=5, seed=0, policy_store=policy_store
        ),
    )
    save_result("table12_transferability_light", result.format())
    assert result.raw["ARE (%)"]
