"""Chaos soak gate: seeded fault-plan matrix with a bit-identity tripwire.

Runs the same seeded workload through a supervised process-backend
:class:`~repro.streams.service.StreamSession` once cleanly (the
baseline) and once per :class:`~repro.streams.faults.FaultPlan` in a
seeded matrix — worker kills, dropped/corrupted/truncated frames,
worker-process murders at event thresholds — with **zero caller-side
recovery code**, and then:

* FAILS if any plan's final estimate is not **bit-identical** to a
  serial run of the same ``(config, name)`` — the self-healing
  contract;
* FAILS if any scheduled fault never fired (the schedule ran past the
  stream: the matrix stops exercising what it claims to);
* writes ``BENCH_chaos.json`` (per-plan recovery counts, fired-fault
  ledgers, wall-time overhead vs the clean baseline) for the CI
  artifact.

Usage::

    PYTHONPATH=src python benchmarks/perf/chaos_bench.py --quick
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro import build_stream
from repro.graph.generators import powerlaw_cluster
from repro.streams.executor import ExecutorOptions
from repro.streams.faults import Fault, FaultPlan
from repro.streams.service import StreamConfig, StreamSession
from repro.streams.supervisor import RecoveryPolicy

STREAM_NAME = "chaos-soak"

#: Fast backoff: the soak measures recovery *work*, not sleep.
POLICY = RecoveryPolicy(backoff_base=0.01, backoff_max=0.05, failure_budget=64)


def build_workload(quick: bool):
    n = 300 if quick else 1_000
    edges = powerlaw_cluster(n, m=4, triangle_probability=0.6, rng=0)
    events = list(build_stream(edges, "light", beta=0.2, rng=1))
    config = StreamConfig(
        algorithm="WSD-H",
        pattern="triangle",
        budget=max(64, len(edges) // 4),
        seed=11,
        shards=2,
        mode="partition",
    )
    return events, config


def serial_reference(events, config) -> float:
    session = StreamSession(STREAM_NAME, config)
    try:
        session.ingest(events)
        return session.queries.estimate()
    finally:
        session.close()


def run_supervised(events, config, plan: FaultPlan | None) -> dict:
    """One process-backend run; the plan (if any) is the only difference."""
    start = time.perf_counter()
    if plan is not None:
        plan.__enter__()
    try:
        session = StreamSession(
            STREAM_NAME,
            config,
            options=ExecutorOptions(backend="process"),
            recovery_policy=POLICY,
        )
        try:
            if plan is not None:
                plan.drive(session, events, step=512)
            else:
                for position in range(0, len(events), 512):
                    session.ingest(events[position:position + 512])
            estimate = session.queries.estimate()
            stats = session.supervisor.stats()
        finally:
            session.close()
    finally:
        if plan is not None:
            plan.__exit__(None, None, None)
    return {
        "estimate": estimate,
        "seconds": time.perf_counter() - start,
        "recoveries": stats["recoveries"],
        "failures": stats["failures"],
        "anonymous_failures": stats["anonymous_failures"],
    }


def build_matrix(events, config, plans: int) -> list[FaultPlan]:
    third = len(events) // 3
    matrix = [
        FaultPlan.random(
            seed, num_shards=config.shards, max_send=6, count=2
        )
        for seed in range(1, plans + 1)
    ]
    matrix.append(
        FaultPlan(
            [
                Fault("kill_worker", shard=0, at_event=third),
                Fault("kill_worker", shard=1, at_event=2 * third),
            ],
            name="murder",
        )
    )
    return matrix


def run(args: argparse.Namespace) -> dict:
    events, config = build_workload(args.quick)
    reference = serial_reference(events, config)
    baseline = run_supervised(events, config, plan=None)
    if baseline["estimate"] != reference:
        print("FATAL: clean process run diverged from serial", file=sys.stderr)
        raise SystemExit(1)

    rows = []
    failures = []
    for plan in build_matrix(events, config, args.plans):
        result = run_supervised(events, config, plan)
        row = {
            "plan": plan.name,
            "seed": plan.seed,
            "scheduled": len(plan.faults),
            "fired": plan.fired,
            "outstanding": len(plan.outstanding()),
            "bit_identical": result["estimate"] == reference,
            "seconds": round(result["seconds"], 4),
            "overhead_ratio": round(
                result["seconds"] / baseline["seconds"], 3
            ),
            "recoveries": result["recoveries"],
            "failures": result["failures"],
            "anonymous_failures": result["anonymous_failures"],
        }
        rows.append(row)
        if not row["bit_identical"]:
            failures.append(f"{plan.name}: estimate diverged from serial")
        if row["outstanding"]:
            failures.append(
                f"{plan.name}: {row['outstanding']} scheduled fault(s) "
                "never fired — shrink at_send/at_event or grow the stream"
            )
        status = "ok" if row["bit_identical"] else "DIVERGED"
        print(
            f"  {plan.name:<12} fired={len(plan.fired)} "
            f"recoveries={row['recoveries']} "
            f"overhead={row['overhead_ratio']:.2f}x  {status}"
        )

    report = {
        "bench": "chaos_soak",
        "quick": args.quick,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "workload": {
            "events": len(events),
            "shards": config.shards,
            "algorithm": config.algorithm,
            "pattern": config.pattern,
        },
        "policy": POLICY.to_dict(),
        "serial_estimate": reference,
        "baseline_seconds": round(baseline["seconds"], 4),
        "plans": rows,
        "summary": {
            "plans": len(rows),
            "all_bit_identical": all(r["bit_identical"] for r in rows),
            "total_recoveries": sum(r["recoveries"] for r in rows),
            "total_failures": sum(
                sum(r["failures"]) + r["anonymous_failures"] for r in rows
            ),
            "mean_overhead_ratio": round(
                sum(r["overhead_ratio"] for r in rows) / len(rows), 3
            ),
        },
        "failures": failures,
    }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="seconds-scale workload"
    )
    parser.add_argument(
        "--plans",
        type=int,
        default=4,
        help="number of seeded random fault plans (a worker-murder plan "
        "is always appended)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_chaos.json"),
        help="report path (default: BENCH_chaos.json)",
    )
    args = parser.parse_args(argv)

    report = run(args)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    summary = report["summary"]
    print(
        f"plans={summary['plans']} recoveries={summary['total_recoveries']} "
        f"mean_overhead={summary['mean_overhead_ratio']}x"
    )
    if report["failures"]:
        for failure in report["failures"]:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("chaos soak: every plan ended bit-identical to serial")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
