"""Service-tier smoke gate: hosted ingest rate + serial parity.

Boots a :class:`~repro.streams.service.CountingService` on a loopback
port (serial backend — this gate measures the *service plumbing*, not
the sharded executor, which has its own gates in ``run_all.py``),
pushes an anomaly-detection-shaped workload through the TCP ingestion
front as columnar blocks, checkpoints mid-stream, and then:

* FAILS if the hosted estimate is not **bit-identical** to the same
  events fed to ``repro.open_stream`` with the same ``(config, name)``
  — the service tier's core contract;
* FAILS if the socket ingest rate falls below ``--min-ingest-rate``
  events/sec (deliberately far below what any real machine records, so
  only a collapse — e.g. an accidental per-event round trip on the
  block path — trips it);
* writes ``BENCH_service_smoke.json`` for the CI artifact.

Usage::

    PYTHONPATH=src python benchmarks/perf/service_smoke.py \
        --quick --min-ingest-rate 20000
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

import repro
from repro import build_stream
from repro.graph.generators import powerlaw_cluster
from repro.streams.ingest import ServiceClient
from repro.streams.service import CountingService, ServiceConfig, StreamConfig

STREAM_NAME = "smoke-feed"


def build_workload(quick: bool):
    n = 600 if quick else 3_000
    edges = powerlaw_cluster(n, m=5, triangle_probability=0.6, rng=0)
    stream = build_stream(edges, "light", beta=0.15, rng=1)
    events = list(stream)
    budget = max(8, stream.num_insertions // 5)
    config = StreamConfig(
        algorithm="WSD-H", pattern="triangle", budget=budget, seed=3
    )
    return events, config


def run(args: argparse.Namespace) -> dict:
    events, config = build_workload(args.quick)

    with repro.open_stream(config, name=STREAM_NAME) as session:
        session.ingest(events)
        serial_estimate = session.queries.estimate()

    with tempfile.TemporaryDirectory(prefix="service-smoke-") as tmp_state:
        return _run_hosted(args, events, config, serial_estimate, tmp_state)


def _run_hosted(args, events, config, serial_estimate, tmp_state) -> dict:
    service = CountingService(
        ServiceConfig(state_dir=Path(tmp_state), checkpoint_interval=None)
    )
    address = service.start()
    client = ServiceClient(address)
    client.create_stream(STREAM_NAME, config)

    chunk = args.chunk
    start = time.perf_counter()
    for offset in range(0, len(events), chunk):
        client.send_events(events[offset:offset + chunk])
        if offset and offset // chunk == (len(events) // chunk) // 2:
            client.checkpoint()  # mid-stream durability on the clock
    clock = client.time()  # barrier: all blocks applied
    elapsed = time.perf_counter() - start

    hosted_estimate = client.estimate()
    client.close()
    service.stop()

    rate = clock / elapsed if elapsed > 0 else float("inf")
    return {
        "events": clock,
        "expected_events": len(events),
        "seconds": round(elapsed, 6),
        "events_per_sec": round(rate, 1),
        "hosted_estimate": hosted_estimate,
        "serial_estimate": serial_estimate,
        "bit_identical": hosted_estimate == serial_estimate,
        "config": config.to_dict(),
        "chunk": chunk,
        "quick": args.quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="seconds-scale workload for CI")
    parser.add_argument("--chunk", type=int, default=1024,
                        help="events per block push")
    parser.add_argument("--min-ingest-rate", type=float, default=0.0,
                        help="fail if socket ingest rate (events/sec) "
                             "falls below this floor")
    parser.add_argument("--output", default="BENCH_service_smoke.json")
    args = parser.parse_args(argv)

    result = run(args)
    Path(args.output).write_text(json.dumps(result, indent=2, sort_keys=True))
    print(
        f"service smoke: {result['events']} events over the socket in "
        f"{result['seconds']:.3f}s ({result['events_per_sec']:,.0f} ev/s)"
    )
    print(
        f"hosted estimate {result['hosted_estimate']:.6f} vs serial "
        f"{result['serial_estimate']:.6f}: "
        f"{'bit-identical' if result['bit_identical'] else 'MISMATCH'}"
    )

    failed = False
    if result["events"] != result["expected_events"]:
        print(f"FAIL: service applied {result['events']} of "
              f"{result['expected_events']} events", file=sys.stderr)
        failed = True
    if not result["bit_identical"]:
        print("FAIL: hosted estimate diverged from the serial reference",
              file=sys.stderr)
        failed = True
    if result["events_per_sec"] < args.min_ingest_rate:
        print(f"FAIL: ingest rate {result['events_per_sec']:,.0f} ev/s "
              f"below the {args.min_ingest_rate:,.0f} ev/s floor",
              file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
