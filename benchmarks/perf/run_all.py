"""Tier-1 tests + throughput smoke pass → ``BENCH_throughput.json``.

The perf gate for this repository: runs the tier-1 test suite, then the
hot-path microbenchmarks (see ``microbench.py``), and writes
``BENCH_throughput.json`` at the repo root containing

* ``baseline`` — the pre-optimization numbers recorded in
  ``benchmarks/perf/baseline_seed.json`` (measured on the seed tree
  with the same harness);
* ``current`` — this run's numbers;
* ``speedup`` — events/sec ratios per sampler × pattern cell;
* ``estimates_match`` — whether every fixed-seed estimate is identical
  to the baseline's (bit-for-bit), the no-behaviour-change guarantee.

Usage::

    PYTHONPATH=src python benchmarks/perf/run_all.py [--quick]
        [--skip-tests] [--repeats N] [--shards N]
        [--backend serial|process|both]

``--quick`` runs a seconds-scale smoke pass (fewer events, 1 repeat);
the full pass is what future PRs should diff against.

``--shards N`` adds sharded-executor cells (WSD/triangle, partition
mode) to the report. With ``--backend both`` (the default) the cell
runs under the serial *and* the process backend and the report gains a
``sharded.parity`` flag — the two backends must produce bit-identical
estimates under the fixed seed, and the run **exits nonzero** when they
do not. This is the CI tripwire for the process backend's
result-identity contract.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

PERF_DIR = Path(__file__).resolve().parent
REPO_ROOT = PERF_DIR.parent.parent
BASELINE_FILE = PERF_DIR / "baseline_seed.json"
OUTPUT_FILE = REPO_ROOT / "BENCH_throughput.json"

sys.path.insert(0, str(PERF_DIR))

import microbench  # noqa: E402


def run_sharded_cells(
    num_events: int,
    budget: int,
    num_vertices: int,
    deletion_fraction: float,
    seed: int,
    shards: int,
    backends: tuple[str, ...],
) -> dict:
    """Benchmark the sharded WSD/triangle cell under each backend.

    Every backend run re-derives the same SeedSequence-spawned shard
    generators from the same root seed, so the estimates must match
    bit-for-bit across backends (``parity``); events/sec is recorded
    per backend the same way the single-sampler matrix records it.
    """
    from repro.samplers.wsd import WSD
    from repro.streams.executor import ShardedStreamExecutor
    from repro.utils.rng import spawn_generators
    from repro.weights.heuristic import GPSHeuristicWeight

    events = microbench.synthetic_stream(
        num_events, num_vertices, deletion_fraction, seed
    )
    shard_budget = max(3, budget // shards)
    cells: dict[str, dict] = {}
    for backend in backends:
        shard_rngs = spawn_generators(seed, shards)
        executor = ShardedStreamExecutor(
            lambda i: WSD(
                "triangle", shard_budget, GPSHeuristicWeight(),
                rng=shard_rngs[i],
            ),
            shards,
            mode="partition",
            executor_backend=backend,
        )
        # Warm the fleet outside the timed window: an empty batch
        # triggers the lazy worker spawn + checkpoint shipping (no-op
        # on the serial backend), so both backends time pure streaming
        # ingestion. Teardown/harvest is excluded on both sides too.
        executor.process_batch([])
        start = time.perf_counter()
        executor.process_stream(events)
        estimate = executor.estimate  # process backend: final barrier
        elapsed = time.perf_counter() - start
        executor.close()
        cells[backend] = {
            "events_per_sec": len(events) / elapsed,
            "seconds": elapsed,
            "estimate": estimate,
            "num_events": len(events),
        }
        print(
            f"  sharded wsd/triangle x{shards} [{backend:>7s}]: "
            f"{cells[backend]['events_per_sec']:>12,.0f} events/s  "
            f"(estimate={estimate:.4f})",
            file=sys.stderr,
        )
    estimates = {cell["estimate"] for cell in cells.values()}
    return {
        "sampler": "wsd",
        "pattern": "triangle",
        "mode": "partition",
        "shards": shards,
        "shard_budget": shard_budget,
        "cells": cells,
        "parity": len(estimates) == 1,
    }


def run_tier1_tests() -> bool:
    """Run the repo's tier-1 verify command; return success."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    result = subprocess.run(
        [sys.executable, "-m", "pytest", "-x", "-q", "tests"],
        cwd=REPO_ROOT,
        env=env,
    )
    return result.returncode == 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="seconds-scale smoke pass")
    parser.add_argument("--skip-tests", action="store_true",
                        help="benchmark only, no tier-1 pytest run")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--output", type=Path, default=OUTPUT_FILE)
    parser.add_argument(
        "--shards", type=int, default=0,
        help="also run a sharded wsd/triangle cell with N replicas "
             "(0 = skip)",
    )
    parser.add_argument(
        "--backend", choices=("serial", "process", "both"), default="both",
        help="executor backend(s) for the sharded cell; 'both' asserts "
             "serial-vs-process estimate parity",
    )
    args = parser.parse_args(argv)

    tests_passed = None
    if not args.skip_tests:
        print("== tier-1 test suite ==", file=sys.stderr)
        tests_passed = run_tier1_tests()
        if not tests_passed:
            print("tier-1 tests FAILED — not recording benchmark",
                  file=sys.stderr)
            return 1

    baseline = (
        json.loads(BASELINE_FILE.read_text(encoding="utf-8"))
        if BASELINE_FILE.exists()
        else None
    )
    config = (baseline or {}).get("config", {})
    num_events = config.get("num_events", 30_000)
    repeats = args.repeats
    if args.quick:
        num_events = min(num_events, 4_000)
        repeats = 1

    print("== throughput microbenchmarks ==", file=sys.stderr)
    current = microbench.run_matrix(
        num_events,
        config.get("budget", 1_500),
        config.get("num_vertices", 400),
        config.get("deletion_fraction", 0.2),
        config.get("seed", 2023),
        repeats,
    )

    report: dict = {
        "schema": "bench_throughput/v1",
        "tier1_tests_passed": tests_passed,
        "quick": args.quick,
        "current": current,
    }

    parity_failed = False
    if args.shards > 0:
        print("== sharded executor cells ==", file=sys.stderr)
        backends = (
            ("serial", "process") if args.backend == "both"
            else (args.backend,)
        )
        sharded = run_sharded_cells(
            num_events,
            config.get("budget", 1_500),
            config.get("num_vertices", 400),
            config.get("deletion_fraction", 0.2),
            config.get("seed", 2023),
            args.shards,
            backends,
        )
        report["sharded"] = sharded
        if len(backends) > 1 and not sharded["parity"]:
            parity_failed = True
            print(
                "serial-vs-process estimate MISMATCH: "
                + ", ".join(
                    f"{name}={cell['estimate']!r}"
                    for name, cell in sharded["cells"].items()
                ),
                file=sys.stderr,
            )
    if baseline is not None:
        speedup = {}
        estimate_match = {}
        comparable = not args.quick  # quick mode uses fewer events
        for key, cell in current["results"].items():
            base_cell = baseline["results"].get(key)
            if base_cell is None:
                continue
            speedup[key] = round(
                cell["events_per_sec"] / base_cell["events_per_sec"], 3
            )
            if comparable:
                # Bit-for-bit fixed-seed comparison per cell. Cells may
                # legitimately differ in the last float bits when an
                # optimization reorders instance *enumeration* (the
                # contribution multiset is unchanged; addition is not
                # associative); the tracked wsd cells must stay True.
                estimate_match[key] = (
                    cell["estimate"] == base_cell["estimate"]
                )
        report["baseline"] = baseline
        report["speedup"] = speedup
        report["estimate_match"] = estimate_match if comparable else None
        report["estimates_match_all"] = (
            all(estimate_match.values()) if comparable else None
        )

    args.output.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {args.output}", file=sys.stderr)
    if baseline is not None and not args.quick:
        wsd_tri = report["speedup"].get("wsd/triangle")
        print(f"wsd/triangle speedup vs seed: {wsd_tri}x", file=sys.stderr)
    if parity_failed:
        print(
            "FAILED: sharded process backend diverged from serial",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
