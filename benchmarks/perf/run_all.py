"""Tier-1 tests + throughput smoke pass → ``BENCH_throughput.json``.

The perf gate for this repository: runs the tier-1 test suite, then the
hot-path microbenchmarks (see ``microbench.py``), and writes
``BENCH_throughput.json`` at the repo root containing

* ``baseline`` — the pre-optimization numbers recorded in
  ``benchmarks/perf/baseline_seed.json`` (measured on the seed tree
  with the same harness);
* ``current`` — this run's numbers;
* ``speedup`` — events/sec ratios per sampler × pattern cell;
* ``estimates_match`` — whether every fixed-seed estimate is identical
  to the baseline's (bit-for-bit), the no-behaviour-change guarantee.

Usage::

    PYTHONPATH=src python benchmarks/perf/run_all.py [--quick]
        [--skip-tests] [--repeats N]

``--quick`` runs a seconds-scale smoke pass (fewer events, 1 repeat);
the full pass is what future PRs should diff against.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

PERF_DIR = Path(__file__).resolve().parent
REPO_ROOT = PERF_DIR.parent.parent
BASELINE_FILE = PERF_DIR / "baseline_seed.json"
OUTPUT_FILE = REPO_ROOT / "BENCH_throughput.json"

sys.path.insert(0, str(PERF_DIR))

import microbench  # noqa: E402


def run_tier1_tests() -> bool:
    """Run the repo's tier-1 verify command; return success."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    result = subprocess.run(
        [sys.executable, "-m", "pytest", "-x", "-q", "tests"],
        cwd=REPO_ROOT,
        env=env,
    )
    return result.returncode == 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="seconds-scale smoke pass")
    parser.add_argument("--skip-tests", action="store_true",
                        help="benchmark only, no tier-1 pytest run")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--output", type=Path, default=OUTPUT_FILE)
    args = parser.parse_args(argv)

    tests_passed = None
    if not args.skip_tests:
        print("== tier-1 test suite ==", file=sys.stderr)
        tests_passed = run_tier1_tests()
        if not tests_passed:
            print("tier-1 tests FAILED — not recording benchmark",
                  file=sys.stderr)
            return 1

    baseline = (
        json.loads(BASELINE_FILE.read_text(encoding="utf-8"))
        if BASELINE_FILE.exists()
        else None
    )
    config = (baseline or {}).get("config", {})
    num_events = config.get("num_events", 30_000)
    repeats = args.repeats
    if args.quick:
        num_events = min(num_events, 4_000)
        repeats = 1

    print("== throughput microbenchmarks ==", file=sys.stderr)
    current = microbench.run_matrix(
        num_events,
        config.get("budget", 1_500),
        config.get("num_vertices", 400),
        config.get("deletion_fraction", 0.2),
        config.get("seed", 2023),
        repeats,
    )

    report: dict = {
        "schema": "bench_throughput/v1",
        "tier1_tests_passed": tests_passed,
        "quick": args.quick,
        "current": current,
    }
    if baseline is not None:
        speedup = {}
        estimate_match = {}
        comparable = not args.quick  # quick mode uses fewer events
        for key, cell in current["results"].items():
            base_cell = baseline["results"].get(key)
            if base_cell is None:
                continue
            speedup[key] = round(
                cell["events_per_sec"] / base_cell["events_per_sec"], 3
            )
            if comparable:
                # Bit-for-bit fixed-seed comparison per cell. Cells may
                # legitimately differ in the last float bits when an
                # optimization reorders instance *enumeration* (the
                # contribution multiset is unchanged; addition is not
                # associative); the tracked wsd cells must stay True.
                estimate_match[key] = (
                    cell["estimate"] == base_cell["estimate"]
                )
        report["baseline"] = baseline
        report["speedup"] = speedup
        report["estimate_match"] = estimate_match if comparable else None
        report["estimates_match_all"] = (
            all(estimate_match.values()) if comparable else None
        )

    args.output.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {args.output}", file=sys.stderr)
    if baseline is not None and not args.quick:
        wsd_tri = report["speedup"].get("wsd/triangle")
        print(f"wsd/triangle speedup vs seed: {wsd_tri}x", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
