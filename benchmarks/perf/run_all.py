"""Tier-1 tests + throughput smoke pass → ``BENCH_throughput.json``.

The perf gate for this repository: runs the tier-1 test suite, then the
hot-path microbenchmarks (see ``microbench.py``), and writes
``BENCH_throughput.json`` at the repo root containing

* ``baseline`` — the pre-optimization numbers recorded in
  ``benchmarks/perf/baseline_seed.json`` (measured on the seed tree
  with the same harness);
* ``current`` — this run's numbers;
* ``speedup`` — events/sec ratios per sampler × pattern cell;
* ``estimates_match`` — whether every fixed-seed estimate is identical
  to the baseline's (bit-for-bit), the no-behaviour-change guarantee.

Usage::

    PYTHONPATH=src python benchmarks/perf/run_all.py [--quick]
        [--skip-tests] [--repeats N] [--shards N]
        [--backend serial|process|both|remote]
        [--transport auto|shm|queue] [--hosts N]
        [--min-process-ratio X] [--min-remote-ratio X] [--ab OLD,NEW]

``--quick`` runs a seconds-scale smoke pass (fewer events, 1 repeat);
the full pass is what future PRs should diff against.

``--shards N`` adds sharded-executor cells (WSD/triangle, partition
mode, columnar stream) to the report. With ``--backend both`` (the
default) the cell runs under the serial *and* the process backend and
the report gains a ``sharded.parity`` flag — the two backends must
produce bit-identical estimates under the fixed seed, and the run
**exits nonzero** when they do not. This is the CI tripwire for the
process backend's result-identity contract. ``--min-process-ratio X``
additionally fails the run when the process backend's throughput drops
below ``X``× the serial backend's on that cell (the perf ratchet for
the shared-memory transport).

``--backend remote`` runs the cell under the serial and the **remote**
backend instead: ``--hosts N`` (default 2) local shard host agents are
spawned for the duration (localhost stand-ins for N machines), shards
are leased across them over TCP, and the same bit-identity parity flag
gates the run — the distributed tier's result-identity tripwire.
``--min-remote-ratio X`` is the matching (deliberately low, on a
single box) throughput ratchet.

Every report records ``host`` metadata (python version, platform, CPU
count, wall-clock timestamp) so the documented ±10–20% cross-session
drift on the recording box is interpretable when comparing recorded
files.

``--ab OLD,NEW`` runs the whole matrix as an interleaved A/B of two
implementation variants in one process (see
``microbench.VARIANTS``) — the drift-robust way to compare a code
change on this host, recorded under the report's ``ab`` key — plus the
*steady-state dense* triangle cells (``microbench.run_ab_dense``,
recorded under ``ab_dense``): graph pre-filled past reservoir
capacity, throughput timed over a constant-density churn phase, which
is the regime where the γ(M) triangle delta dominates the event cost —
plus the WSD-L serving cells (``ab_learned``): the same frozen actor
served through the legacy WeightContext path vs the kernels' block
path on the wsd/triangle and wsd/wedge cells, whose speedup is the
learned fast path's headline number. Any A/B cell whose two estimates
disagree beyond 1e-6 relative fails the run. ``--min-ab-ratio X``
additionally fails the run when the dense ``wsd/triangle`` cell's
NEW/OLD speedup — or any ``ab_learned`` cell's block-over-context
speedup — falls below ``X``, the CI ratchet for the arena and WSD-L
hot paths, analogous to ``--min-process-ratio``.

Estimate comparison against the recorded baseline is tolerance-aware:
``estimate_match`` accepts relative drift up to 1e-6 (float-ordering
differences from estimator reorganisations, e.g. the aggregated wedge
delta), while ``estimate_exact`` records the bit-for-bit comparison.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

PERF_DIR = Path(__file__).resolve().parent
REPO_ROOT = PERF_DIR.parent.parent
BASELINE_FILE = PERF_DIR / "baseline_seed.json"
OUTPUT_FILE = REPO_ROOT / "BENCH_throughput.json"

sys.path.insert(0, str(PERF_DIR))

import microbench  # noqa: E402


def run_sharded_cells(
    num_events: int,
    budget: int,
    num_vertices: int,
    deletion_fraction: float,
    seed: int,
    shards: int,
    backends: tuple[str, ...],
    transport: str = "auto",
    repeats: int = 3,
    hosts: tuple[str, ...] = (),
    recovery=None,
    heartbeat_interval: float | None = None,
) -> dict:
    """Benchmark the sharded WSD/triangle cell under each backend.

    Every backend run re-derives the same SeedSequence-spawned shard
    generators from the same root seed, so the estimates must match
    bit-for-bit across backends (``parity``); events/sec is recorded
    per backend the same way the single-sampler matrix records it. The
    stream is fed columnar (one ``EventBlock``), which is the intended
    production shape: the serial backend partitions it vectorised, the
    process backend ships the sub-blocks through the shared-memory
    transport (per ``transport``), and the remote backend ships them as
    TCP frames to the shard host agents in ``hosts``.
    """
    from repro.graph.stream import EventBlock
    from repro.samplers.wsd import WSD
    from repro.streams.executor import ExecutorOptions, ShardedStreamExecutor
    from repro.utils.rng import spawn_generators
    from repro.weights.heuristic import GPSHeuristicWeight

    events = microbench.synthetic_stream(
        num_events, num_vertices, deletion_fraction, seed
    )
    block = EventBlock.from_events(events)
    shard_budget = max(3, budget // shards)
    cells: dict[str, dict] = {}
    for backend in backends:
        best = float("inf")
        estimate = None
        for _ in range(max(1, repeats)):
            shard_rngs = spawn_generators(seed, shards)
            executor = ShardedStreamExecutor(
                lambda i: WSD(
                    "triangle", shard_budget, GPSHeuristicWeight(),
                    rng=shard_rngs[i],
                ),
                shards,
                mode="partition",
                options=ExecutorOptions(
                    backend=backend,
                    transport=transport,
                    hosts=hosts if backend == "remote" else (),
                    recovery_policy=recovery,
                    heartbeat_interval=(
                        heartbeat_interval if backend == "remote" else None
                    ),
                ),
            )
            # Warm the fleet outside the timed window: an empty batch
            # triggers the lazy worker spawn + checkpoint shipping
            # (no-op on the serial backend), so both backends time pure
            # streaming ingestion. Teardown/harvest is excluded on both
            # sides too. Best-of-``repeats`` like the main matrix —
            # the single-vCPU recording box jitters scheduler-heavy
            # runs far more than single-process ones.
            executor.process_batch([])
            start = time.perf_counter()
            executor.process_stream(block)
            run_estimate = executor.estimate  # process: final barrier
            elapsed = time.perf_counter() - start
            executor.close()
            best = min(best, elapsed)
            if estimate is None:
                estimate = run_estimate
            elif estimate != run_estimate:
                raise AssertionError(
                    f"sharded {backend}: fixed-seed estimate not "
                    f"reproducible across repeats"
                )
        cells[backend] = {
            "events_per_sec": len(events) / best,
            "seconds": best,
            "estimate": estimate,
            "num_events": len(events),
        }
        print(
            f"  sharded wsd/triangle x{shards} [{backend:>7s}]: "
            f"{cells[backend]['events_per_sec']:>12,.0f} events/s  "
            f"(estimate={estimate:.4f})",
            file=sys.stderr,
        )
    estimates = {cell["estimate"] for cell in cells.values()}
    return {
        "sampler": "wsd",
        "pattern": "triangle",
        "mode": "partition",
        "shards": shards,
        "shard_budget": shard_budget,
        "transport": transport,
        "num_hosts": len(hosts) or None,
        "cells": cells,
        "parity": len(estimates) == 1,
    }


def run_tier1_tests() -> bool:
    """Run the repo's tier-1 verify command; return success."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    result = subprocess.run(
        [sys.executable, "-m", "pytest", "-x", "-q", "tests"],
        cwd=REPO_ROOT,
        env=env,
    )
    return result.returncode == 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="seconds-scale smoke pass")
    parser.add_argument("--skip-tests", action="store_true",
                        help="benchmark only, no tier-1 pytest run")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--output", type=Path, default=OUTPUT_FILE)
    parser.add_argument(
        "--shards", type=int, default=0,
        help="also run a sharded wsd/triangle cell with N replicas "
             "(0 = skip)",
    )
    parser.add_argument(
        "--backend",
        choices=("serial", "process", "both", "remote"),
        default="both",
        help="executor backend(s) for the sharded cell; 'both' asserts "
             "serial-vs-process estimate parity, 'remote' asserts "
             "serial-vs-remote parity across --hosts local host agents",
    )
    parser.add_argument(
        "--transport", choices=("auto", "shm", "queue"), default="auto",
        help="worker transport for the sharded cell's process backend",
    )
    parser.add_argument(
        "--hosts", type=int, default=2,
        help="number of local shard host agents to spawn for "
             "--backend remote (localhost stand-ins for N machines)",
    )
    parser.add_argument(
        "--recovery-attempts", type=int, default=0,
        help="arm a RecoveryPolicy(max_attempts=N) on the sharded "
             "cells (0 = no supervised recovery); the estimates must "
             "stay bit-identical either way",
    )
    parser.add_argument(
        "--heartbeat-interval", type=float, default=None,
        help="liveness heartbeat cadence (seconds) on the sharded "
             "remote backend's transports",
    )
    parser.add_argument(
        "--min-process-ratio", type=float, default=0.0,
        help="fail when the sharded process backend's events/sec falls "
             "below this fraction of the serial backend's (0 = off)",
    )
    parser.add_argument(
        "--min-remote-ratio", type=float, default=0.0,
        help="fail when the sharded remote backend's events/sec falls "
             "below this fraction of the serial backend's (0 = off; "
             "requires --backend remote)",
    )
    parser.add_argument(
        "--ab", default=None, metavar="OLD,NEW",
        help="also run the matrix as an interleaved A/B of two named "
             "variants in one process (e.g. 'old,new'), plus the "
             "steady-state dense triangle cells; see "
             "microbench.VARIANTS",
    )
    parser.add_argument(
        "--min-ab-ratio", type=float, default=0.0,
        help="fail when the dense wsd/triangle A/B speedup (NEW over "
             "OLD) falls below this ratio (0 = off; requires --ab)",
    )
    args = parser.parse_args(argv)
    if args.min_ab_ratio > 0.0 and not args.ab:
        parser.error("--min-ab-ratio requires --ab")
    if args.min_remote_ratio > 0.0 and args.backend != "remote":
        parser.error("--min-remote-ratio requires --backend remote")
    if args.hosts < 1:
        parser.error("--hosts must be >= 1")

    tests_passed = None
    if not args.skip_tests:
        print("== tier-1 test suite ==", file=sys.stderr)
        tests_passed = run_tier1_tests()
        if not tests_passed:
            print("tier-1 tests FAILED — not recording benchmark",
                  file=sys.stderr)
            return 1

    baseline = (
        json.loads(BASELINE_FILE.read_text(encoding="utf-8"))
        if BASELINE_FILE.exists()
        else None
    )
    config = (baseline or {}).get("config", {})
    num_events = config.get("num_events", 30_000)
    repeats = args.repeats
    if args.quick:
        num_events = min(num_events, 4_000)
        repeats = 1

    print("== throughput microbenchmarks ==", file=sys.stderr)
    current = microbench.run_matrix(
        num_events,
        config.get("budget", 1_500),
        config.get("num_vertices", 400),
        config.get("deletion_fraction", 0.2),
        config.get("seed", 2023),
        repeats,
    )

    report: dict = {
        "schema": "bench_throughput/v1",
        "tier1_tests_passed": tests_passed,
        "quick": args.quick,
        # Recording-box context: the documented ±10–20% cross-session
        # drift is only interpretable when each file says what box and
        # when. Purely descriptive — never compared or gated on.
        "host": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "timestamp": datetime.now(timezone.utc).isoformat(),
        },
        "current": current,
    }

    if args.ab:
        try:
            variant_a, variant_b = args.ab.split(",")
        except ValueError:
            parser.error("--ab expects two comma-separated variant names")
        print(
            f"== interleaved A/B matrix ({variant_a} vs {variant_b}) ==",
            file=sys.stderr,
        )
        report["ab"] = microbench.run_ab_matrix(
            variant_a.strip(),
            variant_b.strip(),
            num_events,
            config.get("budget", 1_500),
            config.get("num_vertices", 400),
            config.get("deletion_fraction", 0.2),
            config.get("seed", 2023),
            repeats,
        )
        dense_cfg = (
            microbench.DENSE_AB_QUICK_CONFIG if args.quick
            else microbench.DENSE_AB_CONFIG
        )
        print(
            "== steady-state dense triangle A/B "
            f"({variant_a} vs {variant_b}) ==",
            file=sys.stderr,
        )
        report["ab_dense"] = microbench.run_ab_dense(
            variant_a.strip(),
            variant_b.strip(),
            dense_cfg["num_fill"],
            dense_cfg["num_events"],
            dense_cfg["budget"],
            dense_cfg["num_vertices"],
            dense_cfg["seed"],
            # The dense cells time long steady-state windows (far less
            # jittery than the sparse micro cells), so cap the repeats
            # to keep the recorded run minutes-scale.
            1 if args.quick else min(repeats, 2),
            samplers=dense_cfg["samplers"],
        )
        print(
            "== WSD-L serving A/B (learned-ctx vs learned-block) ==",
            file=sys.stderr,
        )
        report["ab_learned"] = microbench.run_ab_matrix(
            "learned-ctx",
            "learned-block",
            num_events,
            config.get("budget", 1_500),
            config.get("num_vertices", 400),
            config.get("deletion_fraction", 0.2),
            config.get("seed", 2023),
            repeats,
            samplers=microbench.LEARNED_AB_CONFIG["samplers"],
            patterns=microbench.LEARNED_AB_CONFIG["patterns"],
        )

    ab_estimates_failed = False
    ab_ratio_failed = False
    for section in ("ab", "ab_dense", "ab_learned"):
        for key, cell in report.get(section, {}).get("results", {}).items():
            if cell.get("estimate_match") is False:
                ab_estimates_failed = True
                print(
                    f"{section} {key}: variant estimates diverge beyond "
                    "1e-6 relative: "
                    + ", ".join(
                        f"{v}={cell[v]['estimate']!r}"
                        for v in report[section]["variants"]
                    ),
                    file=sys.stderr,
                )
    if args.min_ab_ratio > 0.0:
        gate_cell = (
            report.get("ab_dense", {}).get("results", {})
            .get("wsd/triangle")
        )
        if gate_cell is None:
            # Fail closed: a ratchet whose gate cell vanished protects
            # nothing and must not pass green.
            ab_ratio_failed = True
            print(
                "--min-ab-ratio set but the dense wsd/triangle gate "
                "cell is missing from the report",
                file=sys.stderr,
            )
        elif gate_cell["speedup"] < args.min_ab_ratio:
            ab_ratio_failed = True
            print(
                f"dense wsd/triangle A/B at {gate_cell['speedup']}x, "
                f"below the --min-ab-ratio {args.min_ab_ratio} "
                "ratchet",
                file=sys.stderr,
            )
        # The WSD-L serving cells ride the same ratchet: the block
        # path must beat the context path by at least the gate on
        # every recorded cell.
        for key, cell in (
            report.get("ab_learned", {}).get("results", {}).items()
        ):
            if cell["speedup"] < args.min_ab_ratio:
                ab_ratio_failed = True
                print(
                    f"wsd-l {key} serving A/B at {cell['speedup']}x, "
                    f"below the --min-ab-ratio {args.min_ab_ratio} "
                    "ratchet",
                    file=sys.stderr,
                )

    parity_failed = False
    ratio_failed = False
    if args.shards > 0:
        print("== sharded executor cells ==", file=sys.stderr)
        if args.backend == "both":
            backends = ("serial", "process")
        elif args.backend == "remote":
            backends = ("serial", "remote")
        else:
            backends = (args.backend,)
        from repro.streams.supervisor import RecoveryPolicy

        host_handles = []
        host_addresses: tuple[str, ...] = ()
        if "remote" in backends:
            from repro.streams.host import spawn_local_host

            host_handles = [
                spawn_local_host() for _ in range(args.hosts)
            ]
            host_addresses = tuple(h.address for h in host_handles)
            print(
                f"  spawned {len(host_handles)} local shard host "
                f"agent(s): {', '.join(host_addresses)}",
                file=sys.stderr,
            )
        try:
            # The sharded cell always runs at full stream size
            # (subsecond either way): at --quick's 4k events the
            # per-chunk round-trip latency dominates and the
            # parallel/serial ratio stops meaning anything — exactly
            # the number the --min-*-ratio flags gate on.
            sharded = run_sharded_cells(
                config.get("num_events", 30_000),
                config.get("budget", 1_500),
                config.get("num_vertices", 400),
                config.get("deletion_fraction", 0.2),
                config.get("seed", 2023),
                args.shards,
                backends,
                transport=args.transport,
                repeats=repeats,
                hosts=host_addresses,
                recovery=(
                    RecoveryPolicy(max_attempts=args.recovery_attempts)
                    if args.recovery_attempts > 0
                    else None
                ),
                heartbeat_interval=args.heartbeat_interval,
            )
        finally:
            for handle in host_handles:
                handle.stop()
        report["sharded"] = sharded
        if len(backends) > 1 and not sharded["parity"]:
            parity_failed = True
            print(
                "serial-vs-parallel estimate MISMATCH: "
                + ", ".join(
                    f"{name}={cell['estimate']!r}"
                    for name, cell in sharded["cells"].items()
                ),
                file=sys.stderr,
            )
        for flag, other in (
            (args.min_process_ratio, "process"),
            (args.min_remote_ratio, "remote"),
        ):
            if not (
                flag > 0.0 and {"serial", other} <= sharded["cells"].keys()
            ):
                continue
            ratio = (
                sharded["cells"][other]["events_per_sec"]
                / sharded["cells"]["serial"]["events_per_sec"]
            )
            sharded[f"{other}_serial_ratio"] = round(ratio, 3)
            if ratio < flag:
                ratio_failed = True
                print(
                    f"sharded {other} backend at {ratio:.2f}x serial, "
                    f"below the --min-{other}-ratio {flag} ratchet",
                    file=sys.stderr,
                )
    if baseline is not None:
        speedup = {}
        estimate_match = {}
        estimate_exact = {}
        comparable = not args.quick  # quick mode uses fewer events
        for key, cell in current["results"].items():
            base_cell = baseline["results"].get(key)
            if base_cell is None:
                continue
            speedup[key] = round(
                cell["events_per_sec"] / base_cell["events_per_sec"], 3
            )
            if comparable:
                # Fixed-seed comparison per cell. ``estimate_exact`` is
                # the bit-for-bit check; ``estimate_match`` additionally
                # accepts relative drift up to 1e-6 — cells legitimately
                # differ in the last float bits when an optimization
                # regroups estimator arithmetic (the contribution
                # multiset is unchanged; addition is not associative),
                # e.g. the aggregated wedge delta. Anything beyond the
                # tolerance is a real behaviour change.
                estimate_exact[key] = (
                    cell["estimate"] == base_cell["estimate"]
                )
                estimate_match[key] = estimate_exact[key] or (
                    abs(cell["estimate"] - base_cell["estimate"])
                    <= 1e-6 * max(
                        abs(base_cell["estimate"]), abs(cell["estimate"])
                    )
                )
        report["baseline"] = baseline
        report["speedup"] = speedup
        report["estimate_match"] = estimate_match if comparable else None
        report["estimate_exact"] = estimate_exact if comparable else None
        report["estimates_match_all"] = (
            all(estimate_match.values()) if comparable else None
        )

    args.output.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {args.output}", file=sys.stderr)
    if baseline is not None and not args.quick:
        wsd_tri = report["speedup"].get("wsd/triangle")
        print(f"wsd/triangle speedup vs seed: {wsd_tri}x", file=sys.stderr)
    if parity_failed:
        print(
            "FAILED: sharded parallel backend diverged from serial",
            file=sys.stderr,
        )
        return 1
    if ratio_failed:
        print(
            "FAILED: sharded parallel backend below the throughput "
            "ratchet",
            file=sys.stderr,
        )
        return 1
    if ab_estimates_failed:
        print(
            "FAILED: A/B variant estimates diverged beyond tolerance",
            file=sys.stderr,
        )
        return 1
    if ab_ratio_failed:
        print(
            "FAILED: dense triangle A/B below the throughput ratchet",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
