"""Hot-path microbenchmarks: events/sec for sampler × pattern.

Unlike the ``bench_*`` experiment scripts (which regenerate paper
tables), this harness measures raw *streaming throughput* of the
per-event hot path on synthetic fully dynamic streams. It is the
instrument behind ``BENCH_throughput.json`` — every perf PR reruns it
and diffs events/sec against the recorded baseline.

Usage::

    PYTHONPATH=src python benchmarks/perf/microbench.py \
        --output /tmp/bench.json [--quick]

The harness is deliberately tolerant of older library versions (it
falls back to event-at-a-time ``process`` when ``process_batch`` is
missing) so it can be run against the pre-PR seed to record baselines.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.graph.stream import DELETE, INSERT, EdgeEvent, EventBlock
from repro.samplers import kernel as _kernel
from repro.samplers.gps import GPS
from repro.samplers.gps_a import GPSA
from repro.samplers.thinkd import ThinkD
from repro.samplers.wrs import WRS
from repro.samplers.wsd import WSD
from repro.weights.heuristic import GPSHeuristicWeight

#: The benchmark matrix. ``deletion_fraction`` is per-case because GPS
#: is insertion-only. The acceptance-tracking case is ``wsd/triangle``.
PATTERNS = ("wedge", "triangle", "4-clique")
SAMPLERS = ("wsd", "gps", "gps-a", "wrs", "thinkd")

#: Named implementation variants for interleaved A/B comparisons
#: (``run_ab_matrix``): ``feed`` picks the batch representation handed
#: to ``process_batch`` and ``wedge_vector`` toggles the aggregated
#: wedge-delta estimator at sampler construction. ``old`` reproduces
#: the pre-columnar pipeline (tuple events, per-neighbour wedge loop);
#: ``new`` is the current default path. ``events``/``block`` isolate
#: the representation change alone.
VARIANTS: dict[str, dict] = {
    "old": {"feed": "events", "wedge_vector": False},
    "new": {"feed": "block", "wedge_vector": True},
    "events": {"feed": "events", "wedge_vector": True},
    "block": {"feed": "block", "wedge_vector": True},
}


def synthetic_stream(
    num_events: int,
    num_vertices: int = 400,
    deletion_fraction: float = 0.2,
    seed: int = 0,
) -> list[EdgeEvent]:
    """Deterministic fully dynamic stream (insertions + valid deletions).

    Deletions always target a currently-alive edge so every sampler's
    feasibility invariants hold. The event list is materialised up
    front; construction cost is excluded from timing.
    """
    rng = np.random.default_rng(seed)
    alive: list[tuple[int, int]] = []
    alive_pos: dict[tuple[int, int], int] = {}
    events: list[EdgeEvent] = []
    while len(events) < num_events:
        if alive and rng.random() < deletion_fraction:
            i = int(rng.integers(len(alive)))
            edge = alive[i]
            last = alive.pop()
            if i < len(alive):
                alive[i] = last
                alive_pos[last] = i
            del alive_pos[edge]
            events.append(EdgeEvent(DELETE, edge))
        else:
            u = int(rng.integers(num_vertices))
            v = int(rng.integers(num_vertices))
            if u == v:
                continue
            edge = (u, v) if u < v else (v, u)
            if edge in alive_pos:
                continue
            alive_pos[edge] = len(alive)
            alive.append(edge)
            events.append(EdgeEvent(INSERT, edge))
    return events


def make_sampler(name: str, pattern: str, budget: int, seed: int):
    """Construct one benchmark sampler with a deterministic seed."""
    if name == "wsd":
        return WSD(pattern, budget, GPSHeuristicWeight(), rng=seed)
    if name == "gps":
        return GPS(pattern, budget, GPSHeuristicWeight(), rng=seed)
    if name == "gps-a":
        return GPSA(pattern, budget, GPSHeuristicWeight(), rng=seed)
    if name == "wrs":
        return WRS(pattern, budget, rng=seed)
    if name == "thinkd":
        return ThinkD(pattern, budget, rng=seed)
    raise ValueError(f"unknown sampler {name!r}")


def feed(sampler, events) -> float:
    """Push all events through the sampler; return elapsed seconds."""
    batch = getattr(sampler, "process_batch", None)
    start = time.perf_counter()
    if batch is not None:
        batch(events)
    else:  # pre-PR seed fallback
        process = sampler.process
        for event in events:
            process(event)
    return time.perf_counter() - start


def run_case(
    sampler_name: str,
    pattern: str,
    events: list[EdgeEvent],
    budget: int,
    seed: int,
    repeats: int,
) -> dict:
    """Benchmark one sampler × pattern cell; best-of-``repeats`` timing."""
    best = float("inf")
    estimate = None
    for _ in range(repeats):
        sampler = make_sampler(sampler_name, pattern, budget, seed)
        elapsed = feed(sampler, events)
        best = min(best, elapsed)
        if estimate is None:
            estimate = sampler.estimate
        elif estimate != sampler.estimate:
            raise AssertionError(
                f"{sampler_name}/{pattern}: fixed-seed estimate not "
                f"reproducible across repeats ({estimate} vs "
                f"{sampler.estimate})"
            )
    return {
        "events_per_sec": len(events) / best,
        "seconds": best,
        "estimate": estimate,
        "num_events": len(events),
    }


def run_ab_matrix(
    variant_a: str,
    variant_b: str,
    num_events: int,
    budget: int,
    num_vertices: int,
    deletion_fraction: float,
    seed: int,
    repeats: int,
    samplers=SAMPLERS,
    patterns=PATTERNS,
) -> dict:
    """Interleaved A/B comparison of two implementation variants.

    The recording box drifts ±10–20% between sessions (see ROADMAP),
    so comparing cells across *recorded files* conflates code and host.
    This harness alternates the two variants repeat by repeat inside
    one process — both sides see the same thermal/allocator state, so
    the per-cell ratio isolates the code change. Per-variant timing is
    best-of-``repeats``, like the main matrix.
    """
    for name in (variant_a, variant_b):
        if name not in VARIANTS:
            raise ValueError(
                f"unknown variant {name!r}; known: {sorted(VARIANTS)}"
            )
    dynamic = synthetic_stream(
        num_events, num_vertices, deletion_fraction, seed
    )
    insert_only = synthetic_stream(num_events, num_vertices, 0.0, seed)
    blocks = {
        id(dynamic): EventBlock.from_events(dynamic),
        id(insert_only): EventBlock.from_events(insert_only),
    }
    feed(make_sampler("wsd", "triangle", budget, seed), dynamic[:5000])

    def run_one(variant: str, sampler_name: str, pattern: str, stream):
        spec = VARIANTS[variant]
        previous = _kernel.set_wedge_vectorization(spec["wedge_vector"])
        try:
            sampler = make_sampler(sampler_name, pattern, budget, seed)
        finally:
            _kernel.set_wedge_vectorization(previous)
        payload = (
            blocks[id(stream)] if spec["feed"] == "block" else stream
        )
        start = time.perf_counter()
        sampler.process_batch(payload)
        return time.perf_counter() - start, sampler.estimate

    results: dict[str, dict] = {}
    for sampler_name in samplers:
        stream = insert_only if sampler_name == "gps" else dynamic
        for pattern in patterns:
            key = f"{sampler_name}/{pattern}"
            best = {variant_a: float("inf"), variant_b: float("inf")}
            estimates: dict[str, float] = {}
            for _ in range(repeats):
                # Alternate within each repeat so drift during the run
                # hits both variants symmetrically.
                for variant in (variant_a, variant_b):
                    elapsed, estimate = run_one(
                        variant, sampler_name, pattern, stream
                    )
                    best[variant] = min(best[variant], elapsed)
                    estimates[variant] = estimate
            cell = {
                variant: {
                    "events_per_sec": len(stream) / best[variant],
                    "seconds": best[variant],
                    "estimate": estimates[variant],
                }
                for variant in (variant_a, variant_b)
            }
            cell["speedup"] = round(
                best[variant_a] / best[variant_b], 3
            )
            results[key] = cell
            print(
                f"{key:>20s}: {variant_a} "
                f"{cell[variant_a]['events_per_sec']:>12,.0f} ev/s  "
                f"{variant_b} "
                f"{cell[variant_b]['events_per_sec']:>12,.0f} ev/s  "
                f"({variant_b}/{variant_a} = {cell['speedup']:.3f}x)",
                file=sys.stderr,
            )
    return {
        "schema": "bench_ab/v1",
        "variants": [variant_a, variant_b],
        "config": {
            "num_events": num_events,
            "budget": budget,
            "num_vertices": num_vertices,
            "deletion_fraction": deletion_fraction,
            "seed": seed,
            "repeats": repeats,
        },
        "results": results,
    }


def run_matrix(
    num_events: int,
    budget: int,
    num_vertices: int,
    deletion_fraction: float,
    seed: int,
    repeats: int,
    samplers=SAMPLERS,
    patterns=PATTERNS,
) -> dict:
    """Run the full benchmark matrix and return a JSON-able report."""
    dynamic = synthetic_stream(
        num_events, num_vertices, deletion_fraction, seed
    )
    insert_only = synthetic_stream(num_events, num_vertices, 0.0, seed)
    # Warm-up pass: absorb interpreter/allocator cold-start so the
    # first matrix cells are not systematically penalised.
    feed(make_sampler("wsd", "triangle", budget, seed), dynamic[:5000])
    results: dict[str, dict] = {}
    for sampler_name in samplers:
        stream = insert_only if sampler_name == "gps" else dynamic
        for pattern in patterns:
            key = f"{sampler_name}/{pattern}"
            results[key] = run_case(
                sampler_name, pattern, stream, budget, seed, repeats
            )
            print(
                f"{key:>20s}: {results[key]['events_per_sec']:>12,.0f} "
                f"events/s  (estimate={results[key]['estimate']:.4f})",
                file=sys.stderr,
            )
    return {
        "schema": "bench_throughput/v1",
        "config": {
            "num_events": num_events,
            "budget": budget,
            "num_vertices": num_vertices,
            "deletion_fraction": deletion_fraction,
            "seed": seed,
            "repeats": repeats,
        },
        "python": platform.python_version(),
        "results": results,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--events", type=int, default=30_000)
    parser.add_argument("--budget", type=int, default=1_500)
    parser.add_argument("--vertices", type=int, default=400)
    parser.add_argument("--deletion-fraction", type=float, default=0.2)
    parser.add_argument("--seed", type=int, default=2023)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke mode: 4k events, 1 repeat (~seconds)",
    )
    parser.add_argument("--samplers", default=",".join(SAMPLERS))
    parser.add_argument("--patterns", default=",".join(PATTERNS))
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)

    if args.quick:
        args.events = min(args.events, 4_000)
        args.repeats = 1

    report = run_matrix(
        args.events,
        args.budget,
        args.vertices,
        args.deletion_fraction,
        args.seed,
        args.repeats,
        samplers=tuple(args.samplers.split(",")),
        patterns=tuple(args.patterns.split(",")),
    )
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.output:
        args.output.write_text(text + "\n", encoding="utf-8")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
