"""Hot-path microbenchmarks: events/sec for sampler × pattern.

Unlike the ``bench_*`` experiment scripts (which regenerate paper
tables), this harness measures raw *streaming throughput* of the
per-event hot path on synthetic fully dynamic streams. It is the
instrument behind ``BENCH_throughput.json`` — every perf PR reruns it
and diffs events/sec against the recorded baseline.

Usage::

    PYTHONPATH=src python benchmarks/perf/microbench.py \
        --output /tmp/bench.json [--quick]

The harness is deliberately tolerant of older library versions (it
falls back to event-at-a-time ``process`` when ``process_batch`` is
missing) so it can be run against the pre-PR seed to record baselines.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.graph.stream import DELETE, INSERT, EdgeEvent, EventBlock
from repro.samplers import kernel as _kernel
from repro.samplers.gps import GPS
from repro.samplers.gps_a import GPSA
from repro.samplers.thinkd import ThinkD
from repro.samplers.wrs import WRS
from repro.samplers.wsd import WSD
from repro.weights.heuristic import GPSHeuristicWeight

#: The benchmark matrix. ``deletion_fraction`` is per-case because GPS
#: is insertion-only. The acceptance-tracking case is ``wsd/triangle``.
PATTERNS = ("wedge", "triangle", "4-clique")
SAMPLERS = ("wsd", "gps", "gps-a", "wrs", "thinkd")

#: Named implementation variants for interleaved A/B comparisons
#: (``run_ab_matrix`` / ``run_ab_dense``): ``feed`` picks the batch
#: representation handed to ``process_batch``, ``wedge_vector`` toggles
#: the aggregated wedge-delta estimator, and ``arena`` toggles the
#: sampled-graph arena (sorted slabs + payload lanes behind the
#: vectorised triangle delta) — both construction-time switches.
#: ``old`` reproduces the pre-columnar, pre-arena pipeline; ``new`` is
#: the current default path. ``events``/``block`` isolate the
#: representation change alone. The ``learned`` field swaps the
#: heuristic weight for a deterministic frozen WSD-L actor served via
#: the legacy WeightContext path (``"context"``) or the kernels' block
#: path (``"block"``): both draw the identical sampling trajectory
#: under a fixed seed (the bit-identity contract), so their ratio
#: isolates the cost of context materialisation + instance re-walks.
VARIANTS: dict[str, dict] = {
    "old": {"feed": "events", "wedge_vector": False, "arena": False},
    "new": {"feed": "block", "wedge_vector": True, "arena": True},
    "events": {"feed": "events", "wedge_vector": True, "arena": True},
    "block": {"feed": "block", "wedge_vector": True, "arena": True},
    "learned-ctx": {
        "feed": "block", "wedge_vector": True, "arena": True,
        "learned": "context",
    },
    "learned-block": {
        "feed": "block", "wedge_vector": True, "arena": True,
        "learned": "block",
    },
}

#: The WSD-L A/B cells ``run_all.py --ab`` records (context-path vs
#: block-path serving of the same frozen actor).
LEARNED_AB_CONFIG = {
    "samplers": ("wsd",),
    "patterns": ("triangle", "wedge"),
}

#: Steady-state dense-regime config for the triangle-delta A/B
#: (``run_ab_dense``): the graph is pre-filled to reservoir capacity
#: (untimed), then throughput is measured over a churn phase whose
#: density stays constant — the regime where the per-event cost is the
#: γ(M) common-neighbour work of Theorems 3/5 rather than reservoir
#: bookkeeping. The default 30k-event matrix (~7 mean degree) cannot
#: exercise that cost at all: ~87% of its events have zero common
#: neighbours, so it measures everything *except* the triangle delta.
DENSE_AB_CONFIG = {
    "num_vertices": 600,
    "budget": 100_000,
    "num_fill": 120_000,
    "num_events": 40_000,
    "seed": 2023,
    "samplers": ("wsd", "gps", "gps-a", "wrs"),
}

#: Seconds-scale variant for CI (one cell, smaller graph).
DENSE_AB_QUICK_CONFIG = {
    "num_vertices": 400,
    "budget": 40_000,
    "num_fill": 55_000,
    "num_events": 20_000,
    "seed": 2023,
    "samplers": ("wsd",),
}


def _extend_stream(
    rng,
    alive: list,
    alive_pos: dict,
    num_vertices: int,
    num_events: int,
    deletion_fraction: float,
) -> list[EdgeEvent]:
    """Append ``num_events`` valid events, mutating the alive state."""
    events: list[EdgeEvent] = []
    while len(events) < num_events:
        if alive and rng.random() < deletion_fraction:
            i = int(rng.integers(len(alive)))
            edge = alive[i]
            last = alive.pop()
            if i < len(alive):
                alive[i] = last
                alive_pos[last] = i
            del alive_pos[edge]
            events.append(EdgeEvent(DELETE, edge))
        else:
            u = int(rng.integers(num_vertices))
            v = int(rng.integers(num_vertices))
            if u == v:
                continue
            edge = (u, v) if u < v else (v, u)
            if edge in alive_pos:
                continue
            alive_pos[edge] = len(alive)
            alive.append(edge)
            events.append(EdgeEvent(INSERT, edge))
    return events


def synthetic_stream(
    num_events: int,
    num_vertices: int = 400,
    deletion_fraction: float = 0.2,
    seed: int = 0,
) -> list[EdgeEvent]:
    """Deterministic fully dynamic stream (insertions + valid deletions).

    Deletions always target a currently-alive edge so every sampler's
    feasibility invariants hold. The event list is materialised up
    front; construction cost is excluded from timing.
    """
    return _extend_stream(
        np.random.default_rng(seed), [], {}, num_vertices, num_events,
        deletion_fraction,
    )


def steady_state_stream(
    num_fill: int,
    num_events: int,
    num_vertices: int,
    seed: int = 0,
    churn_deletion_fraction: float = 0.5,
) -> tuple[list[EdgeEvent], list[EdgeEvent]]:
    """A warm-up fill phase plus a constant-density churn phase.

    The fill phase is pure insertions (fed untimed, so the measured
    window starts with the sampled graph at its working density); the
    churn phase balances insertions and deletions
    (``churn_deletion_fraction`` = 0.5) so density — and therefore the
    per-event common-neighbour cost — stays stationary. A
    ``churn_deletion_fraction`` of 0.0 yields the insertion-only
    continuation GPS needs.
    """
    max_edges = num_vertices * (num_vertices - 1) // 2
    # _extend_stream rejection-samples unused pairs: a request that
    # needs more distinct alive edges than the complete graph holds
    # would spin forever instead of erroring, so bound it here (with
    # headroom — rejection sampling near the ceiling is quadratic).
    worst_alive = num_fill + num_events  # all insertions, none deleted
    if worst_alive > 0.95 * max_edges:
        raise ValueError(
            f"{worst_alive} potential insertions cannot fit "
            f"{num_vertices} vertices ({max_edges} possible edges); "
            "raise num_vertices or lower the event counts"
        )
    rng = np.random.default_rng(seed)
    alive: list = []
    alive_pos: dict = {}
    fill = _extend_stream(
        rng, alive, alive_pos, num_vertices, num_fill, 0.0
    )
    churn = _extend_stream(
        rng, alive, alive_pos, num_vertices, num_events,
        churn_deletion_fraction,
    )
    return fill, churn


def make_sampler(name: str, pattern: str, budget: int, seed: int):
    """Construct one benchmark sampler with a deterministic seed."""
    if name == "wsd":
        return WSD(pattern, budget, GPSHeuristicWeight(), rng=seed)
    if name == "gps":
        return GPS(pattern, budget, GPSHeuristicWeight(), rng=seed)
    if name == "gps-a":
        return GPSA(pattern, budget, GPSHeuristicWeight(), rng=seed)
    if name == "wrs":
        return WRS(pattern, budget, rng=seed)
    if name == "thinkd":
        return ThinkD(pattern, budget, rng=seed)
    raise ValueError(f"unknown sampler {name!r}")


def feed(sampler, events) -> float:
    """Push all events through the sampler; return elapsed seconds."""
    batch = getattr(sampler, "process_batch", None)
    start = time.perf_counter()
    if batch is not None:
        batch(events)
    else:  # pre-PR seed fallback
        process = sampler.process
        for event in events:
            process(event)
    return time.perf_counter() - start


def run_case(
    sampler_name: str,
    pattern: str,
    events: list[EdgeEvent],
    budget: int,
    seed: int,
    repeats: int,
) -> dict:
    """Benchmark one sampler × pattern cell; best-of-``repeats`` timing."""
    best = float("inf")
    estimate = None
    for _ in range(repeats):
        sampler = make_sampler(sampler_name, pattern, budget, seed)
        elapsed = feed(sampler, events)
        best = min(best, elapsed)
        if estimate is None:
            estimate = sampler.estimate
        elif estimate != sampler.estimate:
            raise AssertionError(
                f"{sampler_name}/{pattern}: fixed-seed estimate not "
                f"reproducible across repeats ({estimate} vs "
                f"{sampler.estimate})"
            )
    return {
        "events_per_sec": len(events) / best,
        "seconds": best,
        "estimate": estimate,
        "num_events": len(events),
    }


def _learned_weight(pattern: str, block_serving: bool):
    """A deterministic frozen WSD-L actor for the learned A/B cells.

    Handcrafted parameters, not a training run: positive weights keep
    the temporal features live (ReLU active on every event) so the
    context path pays its full feature-construction cost, and the bench
    stays reproducible without shipping a trained artifact.
    """
    from repro.patterns.matching import get_pattern
    from repro.rl.policy import FrozenPolicy
    from repro.weights.features import state_dimension
    from repro.weights.learned import LearnedWeight

    dim = state_dimension(get_pattern(pattern).num_edges)
    policy = FrozenPolicy(np.linspace(0.05, 0.45, dim), 0.1)
    return LearnedWeight(policy, block_serving=block_serving)


def _make_variant_sampler(
    variant: str, sampler_name: str, pattern: str, budget: int, seed: int
):
    """Construct a sampler under a variant's construction-time toggles."""
    spec = VARIANTS[variant]
    prev_wedge = _kernel.set_wedge_vectorization(spec["wedge_vector"])
    prev_arena = _kernel.set_arena_acceleration(spec["arena"])
    try:
        learned = spec.get("learned")
        if learned is not None:
            if sampler_name != "wsd":
                raise ValueError(
                    "learned variants are WSD-only (WSD-L), got "
                    f"{sampler_name!r}"
                )
            return WSD(
                pattern, budget,
                _learned_weight(pattern, learned == "block"),
                rng=seed,
            )
        return make_sampler(sampler_name, pattern, budget, seed)
    finally:
        _kernel.set_wedge_vectorization(prev_wedge)
        _kernel.set_arena_acceleration(prev_arena)


def _estimate_flags(estimates: dict) -> dict:
    """Exact / tolerance comparison of two variants' estimates.

    The variants reorganise estimator float arithmetic (aggregated
    wedge delta, arena triangle delta), so bit-equality is not expected
    — agreement within 1e-6 relative is the behaviour contract, and a
    violation means a real divergence, not noise.
    """
    a, b = estimates.values()
    exact = a == b
    return {
        "estimate_exact": exact,
        "estimate_match": exact
        or abs(a - b) <= 1e-6 * max(abs(a), abs(b)),
    }


def run_ab_matrix(
    variant_a: str,
    variant_b: str,
    num_events: int,
    budget: int,
    num_vertices: int,
    deletion_fraction: float,
    seed: int,
    repeats: int,
    samplers=SAMPLERS,
    patterns=PATTERNS,
) -> dict:
    """Interleaved A/B comparison of two implementation variants.

    The recording box drifts ±10–20% between sessions (see ROADMAP),
    so comparing cells across *recorded files* conflates code and host.
    This harness alternates the two variants repeat by repeat inside
    one process — both sides see the same thermal/allocator state, so
    the per-cell ratio isolates the code change. Per-variant timing is
    best-of-``repeats``, like the main matrix.
    """
    for name in (variant_a, variant_b):
        if name not in VARIANTS:
            raise ValueError(
                f"unknown variant {name!r}; known: {sorted(VARIANTS)}"
            )
    dynamic = synthetic_stream(
        num_events, num_vertices, deletion_fraction, seed
    )
    insert_only = synthetic_stream(num_events, num_vertices, 0.0, seed)
    blocks = {
        id(dynamic): EventBlock.from_events(dynamic),
        id(insert_only): EventBlock.from_events(insert_only),
    }
    feed(make_sampler("wsd", "triangle", budget, seed), dynamic[:5000])

    def run_one(variant: str, sampler_name: str, pattern: str, stream):
        sampler = _make_variant_sampler(
            variant, sampler_name, pattern, budget, seed
        )
        payload = (
            blocks[id(stream)]
            if VARIANTS[variant]["feed"] == "block" else stream
        )
        start = time.perf_counter()
        sampler.process_batch(payload)
        return time.perf_counter() - start, sampler.estimate

    results: dict[str, dict] = {}
    for sampler_name in samplers:
        stream = insert_only if sampler_name == "gps" else dynamic
        for pattern in patterns:
            key = f"{sampler_name}/{pattern}"
            best = {variant_a: float("inf"), variant_b: float("inf")}
            estimates: dict[str, float] = {}
            for _ in range(repeats):
                # Alternate within each repeat so drift during the run
                # hits both variants symmetrically.
                for variant in (variant_a, variant_b):
                    elapsed, estimate = run_one(
                        variant, sampler_name, pattern, stream
                    )
                    best[variant] = min(best[variant], elapsed)
                    estimates[variant] = estimate
            cell = {
                variant: {
                    "events_per_sec": len(stream) / best[variant],
                    "seconds": best[variant],
                    "estimate": estimates[variant],
                }
                for variant in (variant_a, variant_b)
            }
            cell["speedup"] = round(
                best[variant_a] / best[variant_b], 3
            )
            cell.update(_estimate_flags(estimates))
            results[key] = cell
            print(
                f"{key:>20s}: {variant_a} "
                f"{cell[variant_a]['events_per_sec']:>12,.0f} ev/s  "
                f"{variant_b} "
                f"{cell[variant_b]['events_per_sec']:>12,.0f} ev/s  "
                f"({variant_b}/{variant_a} = {cell['speedup']:.3f}x)",
                file=sys.stderr,
            )
    return {
        "schema": "bench_ab/v1",
        "variants": [variant_a, variant_b],
        "config": {
            "num_events": num_events,
            "budget": budget,
            "num_vertices": num_vertices,
            "deletion_fraction": deletion_fraction,
            "seed": seed,
            "repeats": repeats,
        },
        "results": results,
    }


def run_ab_dense(
    variant_a: str,
    variant_b: str,
    num_fill: int,
    num_events: int,
    budget: int,
    num_vertices: int,
    seed: int,
    repeats: int,
    samplers=("wsd", "gps", "gps-a", "wrs"),
) -> dict:
    """Interleaved A/B of the *steady-state dense* triangle cells.

    Measures the triangle hot path where it actually dominates: the
    sampled graph is pre-filled past reservoir capacity (untimed, so
    the thresholds are live), then throughput is timed over a
    constant-density churn phase. Mean degree sits in the hundreds, so
    the per-event cost is the γ(M) common-neighbour work — the cost
    the arena's sorted-slab intersection vectorises. The default
    samplers are exactly those whose scalar triangle delta is a
    per-element Python loop (WSD / GPS / GPS-A weight-product, WRS
    membership classification); ThinkD and Triest count via one
    C-level set intersection and are excluded for the same reason
    thinkd/wedge sat out the PR-4 wedge A/B — there is no Python loop
    to remove, and their numbers would only measure arena maintenance.
    4-clique cells are likewise absent: their cost is output-sensitive
    enumeration (the arena only accelerates the u-v intersection
    preamble), covered by the standard matrix instead.
    """
    for name in (variant_a, variant_b):
        if name not in VARIANTS:
            raise ValueError(
                f"unknown variant {name!r}; known: {sorted(VARIANTS)}"
            )
    fill, churn = steady_state_stream(
        num_fill, num_events, num_vertices, seed,
        churn_deletion_fraction=0.5,
    )
    streams_needed = [fill, churn]
    if "gps" in samplers:
        # The insertion-only continuation (GPS cannot see deletions) is
        # the costlier stream to generate — near the complete-graph
        # ceiling rejection sampling dominates — so build it only when
        # a GPS cell will actually consume it.
        fill_ins, churn_ins = steady_state_stream(
            num_fill, num_events, num_vertices, seed,
            churn_deletion_fraction=0.0,
        )
        streams_needed += [fill_ins, churn_ins]
    payloads = {}
    for stream in streams_needed:
        payloads[id(stream)] = {
            "events": stream,
            "block": EventBlock.from_events(stream),
        }

    def run_one(variant: str, sampler_name: str, streams):
        sampler = _make_variant_sampler(
            variant, sampler_name, "triangle", budget, seed
        )
        feed_kind = VARIANTS[variant]["feed"]
        warm, timed = streams
        sampler.process_batch(payloads[id(warm)][feed_kind])
        start = time.perf_counter()
        sampler.process_batch(payloads[id(timed)][feed_kind])
        return time.perf_counter() - start, sampler.estimate

    results: dict[str, dict] = {}
    for sampler_name in samplers:
        streams = (
            (fill_ins, churn_ins) if sampler_name == "gps"
            else (fill, churn)
        )
        key = f"{sampler_name}/triangle"
        best = {variant_a: float("inf"), variant_b: float("inf")}
        estimates: dict[str, float] = {}
        for _ in range(max(1, repeats)):
            for variant in (variant_a, variant_b):
                elapsed, estimate = run_one(variant, sampler_name, streams)
                best[variant] = min(best[variant], elapsed)
                estimates[variant] = estimate
        cell = {
            variant: {
                "events_per_sec": num_events / best[variant],
                "seconds": best[variant],
                "estimate": estimates[variant],
            }
            for variant in (variant_a, variant_b)
        }
        cell["speedup"] = round(best[variant_a] / best[variant_b], 3)
        cell.update(_estimate_flags(estimates))
        results[key] = cell
        print(
            f"{key:>20s} [dense]: {variant_a} "
            f"{cell[variant_a]['events_per_sec']:>10,.0f} ev/s  "
            f"{variant_b} "
            f"{cell[variant_b]['events_per_sec']:>10,.0f} ev/s  "
            f"({variant_b}/{variant_a} = {cell['speedup']:.3f}x)",
            file=sys.stderr,
        )
    return {
        "schema": "bench_ab_dense/v1",
        "variants": [variant_a, variant_b],
        "config": {
            "num_fill": num_fill,
            "num_events": num_events,
            "budget": budget,
            "num_vertices": num_vertices,
            "churn_deletion_fraction": 0.5,
            "seed": seed,
            "repeats": repeats,
            "samplers": list(samplers),
        },
        "results": results,
    }


def run_matrix(
    num_events: int,
    budget: int,
    num_vertices: int,
    deletion_fraction: float,
    seed: int,
    repeats: int,
    samplers=SAMPLERS,
    patterns=PATTERNS,
) -> dict:
    """Run the full benchmark matrix and return a JSON-able report."""
    dynamic = synthetic_stream(
        num_events, num_vertices, deletion_fraction, seed
    )
    insert_only = synthetic_stream(num_events, num_vertices, 0.0, seed)
    # Warm-up pass: absorb interpreter/allocator cold-start so the
    # first matrix cells are not systematically penalised.
    feed(make_sampler("wsd", "triangle", budget, seed), dynamic[:5000])
    results: dict[str, dict] = {}
    for sampler_name in samplers:
        stream = insert_only if sampler_name == "gps" else dynamic
        for pattern in patterns:
            key = f"{sampler_name}/{pattern}"
            results[key] = run_case(
                sampler_name, pattern, stream, budget, seed, repeats
            )
            print(
                f"{key:>20s}: {results[key]['events_per_sec']:>12,.0f} "
                f"events/s  (estimate={results[key]['estimate']:.4f})",
                file=sys.stderr,
            )
    return {
        "schema": "bench_throughput/v1",
        "config": {
            "num_events": num_events,
            "budget": budget,
            "num_vertices": num_vertices,
            "deletion_fraction": deletion_fraction,
            "seed": seed,
            "repeats": repeats,
        },
        "python": platform.python_version(),
        "results": results,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--events", type=int, default=30_000)
    parser.add_argument("--budget", type=int, default=1_500)
    parser.add_argument("--vertices", type=int, default=400)
    parser.add_argument("--deletion-fraction", type=float, default=0.2)
    parser.add_argument("--seed", type=int, default=2023)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke mode: 4k events, 1 repeat (~seconds)",
    )
    parser.add_argument("--samplers", default=",".join(SAMPLERS))
    parser.add_argument("--patterns", default=",".join(PATTERNS))
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)

    if args.quick:
        args.events = min(args.events, 4_000)
        args.repeats = 1

    report = run_matrix(
        args.events,
        args.budget,
        args.vertices,
        args.deletion_fraction,
        args.seed,
        args.repeats,
        samplers=tuple(args.samplers.split(",")),
        patterns=tuple(args.patterns.split(",")),
    )
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.output:
        args.output.write_text(text + "\n", encoding="utf-8")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
