"""Protocol fuzz gate: seeded hostile-bytes matrix against live fronts.

Runs one :class:`~repro.streams.fuzz.FuzzPlan` per seed against a live
service front and a live host agent (same process, real sockets) and
FAILS if any case ends outside the contract — a hang, an unhandled
exception on a server thread, an over-cap allocation, or a clean
control cell whose result is not bit-identical to the in-process
reference. Every failure prints its reproducing seed:
``FuzzPlan.from_seed(seed, targets).wire_bytes()`` rebuilds the exact
hostile byte stream anywhere.

Writes ``BENCH_fuzz.json`` (outcome/mutation histograms, per-failure
seeds, wall time) for the CI artifact.

Usage::

    PYTHONPATH=src python benchmarks/perf/fuzz_bench.py --quick
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.streams.fuzz import CASE_TIMEOUT, FuzzHarness, run_fuzz


def run(args) -> dict:
    seeds = range(args.seed_base, args.seed_base + args.seeds)
    targets = ("service", "host")
    print(
        f"fuzzing {len(seeds)} seeds x {targets} "
        f"(case timeout {CASE_TIMEOUT:.0f}s)"
    )
    start = time.perf_counter()
    with FuzzHarness() as harness:
        report = run_fuzz(seeds, targets=targets, harness=harness)
    elapsed = time.perf_counter() - start

    payload = report.to_dict()
    for outcome, count in sorted(payload["outcomes"].items()):
        print(f"  {outcome:<20} {count}")
    for case in report.failures:
        print(
            f"FAIL seed={case.seed} target={case.target} "
            f"mutation={case.mutation} outcome={case.outcome}: "
            f"{case.detail}",
            file=sys.stderr,
        )
        print(
            f"  reproduce: FuzzPlan.from_seed({case.seed}, "
            f"targets={targets!r}).wire_bytes()",
            file=sys.stderr,
        )
    for line in report.thread_exceptions:
        print(f"THREAD EXCEPTION: {line}", file=sys.stderr)

    return {
        "bench": "protocol_fuzz",
        "quick": args.quick,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "seeds": args.seeds,
        "seed_base": args.seed_base,
        "targets": list(targets),
        "seconds": round(elapsed, 3),
        "cases_per_second": round(len(report.cases) / max(elapsed, 1e-9), 2),
        **payload,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="40-seed smoke instead of the full soak",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=None,
        help="seed count (default: 200, or 40 with --quick); each "
        "seed's plan draws its target front from the target pool",
    )
    parser.add_argument(
        "--seed-base",
        type=int,
        default=0,
        help="first seed of the contiguous range (default: 0)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_fuzz.json"),
        help="report path (default: BENCH_fuzz.json)",
    )
    args = parser.parse_args(argv)
    if args.seeds is None:
        args.seeds = 40 if args.quick else 200

    report = run(args)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    print(
        f"cases={report['cases']} in {report['seconds']}s "
        f"({report['cases_per_second']}/s)"
    )
    if not report["ok"]:
        print(
            f"FAIL: {len(report['failures'])} contract violation(s), "
            f"{len(report['thread_exceptions'])} thread exception(s)",
            file=sys.stderr,
        )
        return 1
    print("protocol fuzz: every case ended in a typed error or clean close")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
