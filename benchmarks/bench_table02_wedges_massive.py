"""Table II: counting wedges under the massive deletion scenario."""

from conftest import run_once

from repro.experiments.tables import table_counts


def test_table02_wedges_massive(benchmark, policy_store, save_result):
    result = run_once(
        benchmark,
        lambda: table_counts(
            "wedge", "massive", trials=5, seed=0, policy_store=policy_store
        ),
    )
    save_result("table02_wedges_massive", result.format())
    for dataset in result.raw["ARE (%)"]:
        assert result.value("ARE (%)", dataset, "WSD-L") >= 0.0
