"""Figure 4(a-d): the light-deletion counterparts of Figure 2."""

from conftest import run_once

from repro.experiments.figures import (
    figure_ordering,
    figure_reservoir_size,
    figure_training_size,
    figure_weight_relationship,
)


def test_fig4a_ordering_light(benchmark, policy_store, save_result):
    result = run_once(
        benchmark,
        lambda: figure_ordering(
            "light", trials=5, seed=0, policy_store=policy_store
        ),
    )
    save_result("fig4a_ordering_light", result.format())
    assert len(result.series["WSD-H"]) == 3


def test_fig4b_reservoir_size_light(benchmark, policy_store, save_result):
    result = benchmark.pedantic(
        lambda: figure_reservoir_size(
            "light", trials=5, seed=0, policy_store=policy_store
        ),
        rounds=1, iterations=1,
    )
    save_result("fig4b_reservoir_size_light", result.format())
    for name in result.series:
        ys = result.ys(name)
        assert ys[-1] <= ys[0] * 1.5


def test_fig4c_training_size_light(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: figure_training_size("light", seed=0),
        rounds=1, iterations=1,
    )
    save_result("fig4c_training_size_light", result.format())
    assert result.ys("train time (s)")


def test_fig4d_weight_relationship_light(benchmark, policy_store, save_result):
    result = benchmark.pedantic(
        lambda: figure_weight_relationship(
            "light", runs=10, seed=0, policy_store=policy_store
        ),
        rounds=1, iterations=1,
    )
    save_result("fig4d_weight_relationship_light", result.format())
    assert result.series["mean weight"]
