"""Table VII: counting 4-cliques under the massive deletion scenario."""

from conftest import run_once

from repro.experiments.tables import table_counts


def test_table07_4cliques_massive(benchmark, policy_store, save_result):
    result = run_once(
        benchmark,
        lambda: table_counts(
            "4-clique", "massive", trials=5, seed=0, policy_store=policy_store
        ),
    )
    save_result("table07_4cliques_massive", result.format())
    assert result.raw["ARE (%)"]
