"""Tests for the dynamic adjacency structure."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EdgeExistsError, EdgeNotFoundError, SelfLoopError
from repro.graph.adjacency import DynamicAdjacency


@pytest.fixture
def triangle_graph():
    g = DynamicAdjacency()
    g.add_edge(1, 2)
    g.add_edge(2, 3)
    g.add_edge(1, 3)
    return g


class TestMutation:
    def test_add_edge_returns_canonical(self):
        g = DynamicAdjacency()
        assert g.add_edge(5, 2) == (2, 5)

    def test_add_duplicate_raises(self):
        g = DynamicAdjacency()
        g.add_edge(1, 2)
        with pytest.raises(EdgeExistsError):
            g.add_edge(2, 1)

    def test_add_self_loop_raises(self):
        g = DynamicAdjacency()
        with pytest.raises(SelfLoopError):
            g.add_edge(1, 1)

    def test_remove_edge(self, triangle_graph):
        triangle_graph.remove_edge(1, 2)
        assert not triangle_graph.has_edge(1, 2)
        assert triangle_graph.num_edges == 2

    def test_remove_absent_raises(self):
        g = DynamicAdjacency()
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge(1, 2)

    def test_remove_drops_isolated_vertices(self):
        g = DynamicAdjacency()
        g.add_edge(1, 2)
        g.remove_edge(1, 2)
        assert g.num_vertices == 0

    def test_clear(self, triangle_graph):
        triangle_graph.clear()
        assert triangle_graph.num_edges == 0
        assert triangle_graph.num_vertices == 0

    def test_reinsert_after_remove(self):
        g = DynamicAdjacency()
        g.add_edge(1, 2)
        g.remove_edge(1, 2)
        g.add_edge(1, 2)
        assert g.has_edge(1, 2)


class TestQueries:
    def test_has_edge_symmetric(self, triangle_graph):
        assert triangle_graph.has_edge(1, 2)
        assert triangle_graph.has_edge(2, 1)

    def test_has_edge_self_false(self, triangle_graph):
        assert not triangle_graph.has_edge(1, 1)

    def test_neighbors(self, triangle_graph):
        assert triangle_graph.neighbors(1) == {2, 3}

    def test_neighbors_unknown_vertex(self):
        assert DynamicAdjacency().neighbors(42) == frozenset()

    def test_degree(self, triangle_graph):
        assert triangle_graph.degree(1) == 2

    def test_degree_unknown_vertex(self):
        assert DynamicAdjacency().degree(42) == 0

    def test_common_neighbors(self, triangle_graph):
        assert triangle_graph.common_neighbors(1, 2) == {3}

    def test_common_neighbors_empty(self):
        g = DynamicAdjacency()
        g.add_edge(1, 2)
        assert g.common_neighbors(1, 3) == set()

    def test_edges_iteration_unique(self, triangle_graph):
        edges = list(triangle_graph.edges())
        assert len(edges) == 3
        assert len(set(edges)) == 3
        assert all(a < b for a, b in edges)

    def test_contains(self, triangle_graph):
        assert (1, 2) in triangle_graph
        assert (1, 4) not in triangle_graph

    def test_len(self, triangle_graph):
        assert len(triangle_graph) == 3

    def test_vertices(self, triangle_graph):
        assert set(triangle_graph.vertices()) == {1, 2, 3}


class TestPropertyBased:
    @given(
        st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 30)),
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_consistent_with_set_model(self, operations):
        """Random toggles keep the structure consistent with a set model."""
        g = DynamicAdjacency()
        model: set[tuple[int, int]] = set()
        for u, v in operations:
            if u == v:
                continue
            edge = (min(u, v), max(u, v))
            if edge in model:
                g.remove_edge(u, v)
                model.discard(edge)
            else:
                g.add_edge(u, v)
                model.add(edge)
        assert set(g.edges()) == model
        assert g.num_edges == len(model)
        degrees = {}
        for a, b in model:
            degrees[a] = degrees.get(a, 0) + 1
            degrees[b] = degrees.get(b, 0) + 1
        for v, d in degrees.items():
            assert g.degree(v) == d
        assert g.num_vertices == len(degrees)

    @given(
        st.lists(
            st.tuples(st.integers(0, 15), st.integers(0, 15)),
            max_size=60,
        ),
        st.integers(0, 15),
        st.integers(0, 15),
    )
    @settings(max_examples=50, deadline=None)
    def test_common_neighbors_matches_bruteforce(self, pairs, u, v):
        g = DynamicAdjacency()
        for a, b in pairs:
            if a != b and not g.has_edge(a, b):
                g.add_edge(a, b)
        expected = {
            w
            for w in g.vertices()
            if g.has_edge(u, w) and g.has_edge(v, w)
        }
        assert g.common_neighbors(u, v) == expected
