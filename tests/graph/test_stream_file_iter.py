"""Tests for constant-memory stream file iteration."""

import pytest

from repro.errors import StreamFormatError
from repro.graph.stream import EdgeEvent, EdgeStream, iter_stream_file


@pytest.fixture
def stream_file(tmp_path):
    stream = EdgeStream(
        [
            EdgeEvent.insertion(1, 2),
            EdgeEvent.insertion(2, 3),
            EdgeEvent.deletion(1, 2),
        ]
    )
    path = tmp_path / "stream.txt"
    stream.dump(path)
    return path, stream


class TestIterStreamFile:
    def test_yields_same_events_as_load(self, stream_file):
        path, stream = stream_file
        assert list(iter_stream_file(path)) == list(stream)

    def test_is_lazy(self, stream_file):
        path, _ = stream_file
        iterator = iter_stream_file(path)
        first = next(iterator)
        assert first == EdgeEvent.insertion(1, 2)

    def test_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "s.txt"
        path.write_text("# header\n\n+ 1 2\n")
        assert list(iter_stream_file(path)) == [EdgeEvent.insertion(1, 2)]

    def test_malformed_line_raises_with_lineno(self, tmp_path):
        path = tmp_path / "s.txt"
        path.write_text("+ 1 2\n* 3 4\n")
        iterator = iter_stream_file(path)
        next(iterator)
        with pytest.raises(StreamFormatError, match="line 2"):
            next(iterator)

    def test_bad_vertex_raises(self, tmp_path):
        path = tmp_path / "s.txt"
        path.write_text("+ one 2\n")
        with pytest.raises(StreamFormatError):
            list(iter_stream_file(path))

    def test_sampler_consumes_iterator(self, stream_file):
        path, stream = stream_file
        from repro.samplers.thinkd import ThinkD

        direct = ThinkD("triangle", 10, rng=0)
        direct.process_stream(stream)
        lazy = ThinkD("triangle", 10, rng=0)
        lazy.process_stream(iter_stream_file(path))
        assert lazy.estimate == direct.estimate
        assert lazy.time == direct.time

    def test_vertex_type_conversion(self, tmp_path):
        path = tmp_path / "s.txt"
        path.write_text("+ a b\n")
        events = list(iter_stream_file(path, vertex_type=str))
        assert events[0].edge == ("a", "b")
