"""Tests for edge events and stream (de)serialisation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StreamFormatError
from repro.graph.stream import DELETE, INSERT, EdgeEvent, EdgeStream


class TestEdgeEvent:
    def test_insertion_constructor(self):
        event = EdgeEvent.insertion(3, 1)
        assert event.op == INSERT
        assert event.edge == (1, 3)
        assert event.is_insertion
        assert not event.is_deletion

    def test_deletion_constructor(self):
        event = EdgeEvent.deletion(1, 3)
        assert event.op == DELETE
        assert event.is_deletion

    def test_bad_op_rejected(self):
        with pytest.raises(ValueError):
            EdgeEvent("x", (1, 2))

    def test_edge_canonicalised(self):
        assert EdgeEvent("+", (9, 2)).edge == (2, 9)

    def test_frozen(self):
        event = EdgeEvent.insertion(1, 2)
        with pytest.raises(AttributeError):
            event.op = "-"

    def test_equality(self):
        assert EdgeEvent.insertion(1, 2) == EdgeEvent("+", (2, 1))


class TestEdgeStream:
    def test_from_edges(self):
        stream = EdgeStream.from_edges([(1, 2), (2, 3)])
        assert len(stream) == 2
        assert all(e.is_insertion for e in stream)

    def test_counts(self):
        stream = EdgeStream(
            [
                EdgeEvent.insertion(1, 2),
                EdgeEvent.insertion(2, 3),
                EdgeEvent.deletion(1, 2),
            ]
        )
        assert stream.num_insertions == 2
        assert stream.num_deletions == 1
        assert stream.final_edge_count() == 1

    def test_distinct_edges(self):
        stream = EdgeStream(
            [
                EdgeEvent.insertion(1, 2),
                EdgeEvent.deletion(1, 2),
                EdgeEvent.insertion(1, 2),
            ]
        )
        assert stream.distinct_edges() == {(1, 2)}

    def test_indexing_and_slicing(self):
        stream = EdgeStream.from_edges([(1, 2), (2, 3), (3, 4)])
        assert stream[0].edge == (1, 2)
        sliced = stream[1:]
        assert isinstance(sliced, EdgeStream)
        assert len(sliced) == 2

    def test_concat(self):
        a = EdgeStream.from_edges([(1, 2)])
        b = EdgeStream.from_edges([(2, 3)])
        assert len(a.concat(b)) == 2

    def test_equality_and_hash(self):
        a = EdgeStream.from_edges([(1, 2)])
        b = EdgeStream.from_edges([(1, 2)])
        assert a == b
        assert hash(a) == hash(b)

    def test_dumps_format(self):
        stream = EdgeStream(
            [EdgeEvent.insertion(1, 2), EdgeEvent.deletion(1, 2)]
        )
        assert stream.dumps() == "+ 1 2\n- 1 2\n"

    def test_loads_skips_comments_and_blanks(self):
        text = "# header\n\n+ 1 2\n- 1 2\n"
        stream = EdgeStream.loads(text)
        assert len(stream) == 2

    def test_loads_rejects_malformed(self):
        with pytest.raises(StreamFormatError):
            EdgeStream.loads("+ 1\n")

    def test_loads_rejects_bad_op(self):
        with pytest.raises(StreamFormatError):
            EdgeStream.loads("* 1 2\n")

    def test_loads_rejects_bad_vertex(self):
        with pytest.raises(StreamFormatError):
            EdgeStream.loads("+ one 2\n")

    def test_file_round_trip(self, tmp_path):
        stream = EdgeStream(
            [EdgeEvent.insertion(5, 2), EdgeEvent.deletion(5, 2)]
        )
        path = tmp_path / "stream.txt"
        stream.dump(path)
        assert EdgeStream.load(path) == stream

    @given(
        st.lists(
            st.tuples(
                st.sampled_from("+-"),
                st.integers(0, 50),
                st.integers(51, 100),
            ),
            max_size=100,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_text_round_trip(self, raw_events):
        stream = EdgeStream(
            EdgeEvent(op, (u, v)) for op, u, v in raw_events
        )
        assert EdgeStream.loads(stream.dumps()) == stream
