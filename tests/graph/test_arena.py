"""Unit tests for the sorted-CSR adjacency arena.

Covers the structural invariants the samplers' bit-identity contracts
lean on: sorted/unique live slabs, tombstone accounting, power-of-two
capacity growth at the boundaries, per-vertex and arena-wide
compaction, sentinel padding, and the intersection queries against a
brute-force reference.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graph.arena import _PAD, AdjacencyArena, _pow2_at_least


def build(arena, vid, items):
    """Install a slab from a {neighbour: payload} dict."""
    ids = sorted(items)
    arena.build(
        vid,
        np.array(ids, dtype=np.int64),
        np.array([items[i] for i in ids], dtype=np.float64),
    )


class TestSlabBasics:
    def test_build_and_query(self):
        arena = AdjacencyArena()
        build(arena, 0, {3: 0.5, 7: 1.5, 9: 2.5})
        assert 0 in arena
        assert arena.live_degree(0) == 3
        ids, lane = arena.live_items(0)
        assert ids.tolist() == [3, 7, 9]
        assert lane.tolist() == [0.5, 1.5, 2.5]
        arena.check_invariants()

    def test_insert_keeps_sorted_order(self):
        arena = AdjacencyArena()
        build(arena, 0, {})
        for n in (5, 1, 9, 3, 7):
            arena.insert(0, n, float(n))
        ids, lane = arena.live_items(0)
        assert ids.tolist() == [1, 3, 5, 7, 9]
        assert lane.tolist() == [1.0, 3.0, 5.0, 7.0, 9.0]
        arena.check_invariants()

    def test_duplicate_insert_rejected(self):
        arena = AdjacencyArena()
        build(arena, 0, {4: 1.0})
        with pytest.raises(ConfigurationError):
            arena.insert(0, 4, 2.0)

    def test_remove_missing_rejected(self):
        arena = AdjacencyArena()
        build(arena, 0, {4: 1.0})
        with pytest.raises(ConfigurationError):
            arena.remove(0, 5)

    def test_double_build_rejected(self):
        arena = AdjacencyArena()
        build(arena, 0, {1: 1.0})
        with pytest.raises(ConfigurationError):
            build(arena, 0, {2: 1.0})

    def test_payload_roundtrip(self):
        arena = AdjacencyArena()
        build(arena, 0, {2: 1.0, 4: 2.0})
        arena.set_payload(0, 4, 9.0)
        assert arena.payload(0, 4) == 9.0
        assert arena.payload(0, 2) == 1.0
        with pytest.raises(ConfigurationError):
            arena.set_payload(0, 6, 1.0)


class TestTombstones:
    def test_remove_tombstones_then_resurrect(self):
        arena = AdjacencyArena()
        build(arena, 0, {k: float(k) for k in range(10, 40)})
        assert arena.remove(0, 20) == 29
        # The slot is dead but the id stays in place (slab still probes).
        slab = arena._slabs[0]
        assert slab.dead == 1
        # Re-inserting resurrects the slot in place with the new payload.
        arena.insert(0, 20, 99.0)
        assert slab.dead == 0
        assert arena.payload(0, 20) == 99.0
        assert arena.live_degree(0) == 30
        arena.check_invariants()

    def test_half_dead_triggers_compaction(self):
        arena = AdjacencyArena()
        build(arena, 0, {k: float(k) for k in range(16)})
        for k in range(8):
            arena.remove(0, k)
        slab = arena._slabs[0]
        assert slab.dead == 0  # compaction fired at the 50% mark
        assert slab.size == 8
        ids, _ = arena.live_items(0)
        assert ids.tolist() == list(range(8, 16))
        arena.check_invariants()

    def test_queries_see_only_live_entries(self):
        arena = AdjacencyArena()
        build(arena, 0, {1: 1.0, 2: 2.0, 3: 3.0})
        build(arena, 1, {1: 10.0, 2: 20.0, 4: 40.0})
        arena.remove(0, 2)
        assert arena.common_count(0, 1) == 1
        assert arena.common_ids(0, 1).tolist() == [1]
        pa, pb = arena.common_payloads(0, 1)
        assert sorted([pa.tolist(), pb.tolist()]) == [[1.0], [10.0]]


class TestGrowth:
    def test_power_of_two_boundary_growth(self):
        """Filling a slab to capacity relocates it with doubled cap."""
        arena = AdjacencyArena()
        build(arena, 0, {})
        caps = set()
        for n in range(200):
            arena.insert(0, n, float(n))
            slab = arena._slabs[0]
            caps.add(slab.cap)
            assert slab.cap == _pow2_at_least(slab.cap)
            assert slab.cap >= slab.size + 1  # always one pad slot
            arena.check_invariants()
        assert caps == {2, 4, 8, 16, 32, 64, 128, 256}
        ids, _ = arena.live_items(0)
        assert ids.tolist() == list(range(200))

    def test_arena_buffer_doubles(self):
        arena = AdjacencyArena(initial_capacity=4)
        for vid in range(8):
            build(arena, vid, {k: 1.0 for k in range(10)})
        assert arena.capacity >= 8 * 16
        arena.check_invariants()

    def test_relocation_compacts_tombstones(self):
        arena = AdjacencyArena()
        build(arena, 0, {k: float(k) for k in range(15)})  # cap 16, full
        arena.remove(0, 3)  # 1 dead of 15 — below the 50% trigger
        arena.insert(0, 100, 1.0)  # forces relocation (size+1 == cap)
        slab = arena._slabs[0]
        assert slab.dead == 0
        ids, _ = arena.live_items(0)
        assert ids.tolist() == [k for k in range(15) if k != 3] + [100]
        arena.check_invariants()

    def test_drop_reclaims_tail_and_counts_garbage(self):
        arena = AdjacencyArena()
        build(arena, 0, {1: 1.0})
        build(arena, 1, {2: 2.0})
        tail = arena._tail
        arena.drop(1)  # tail slab: tail pointer rewinds
        assert arena._tail < tail
        assert arena.garbage == 0
        build(arena, 2, {3: 3.0})
        arena.drop(0)  # interior slab: becomes garbage
        assert arena.garbage > 0
        arena.check_invariants()

    def test_compact_arena_squeezes_garbage(self):
        arena = AdjacencyArena()
        for vid in range(6):
            build(arena, vid, {k: float(vid) for k in range(20)})
        for vid in (1, 3):
            arena.drop(vid)
        arena.compact_arena()
        assert arena.garbage == 0
        for vid in (0, 2, 4, 5):
            ids, lane = arena.live_items(vid)
            assert ids.tolist() == list(range(20))
            assert set(lane.tolist()) == {float(vid)}
        arena.check_invariants()

    def test_sentinel_padding_preserved(self):
        arena = AdjacencyArena()
        build(arena, 0, {k: 1.0 for k in range(5)})
        slab = arena._slabs[0]
        pad = arena._ids[slab.off + slab.size:slab.off + slab.cap]
        assert np.all(pad == _PAD)


class TestIntersections:
    def test_matches_brute_force(self):
        rng = random.Random(5)
        arena = AdjacencyArena(initial_capacity=8)
        ref: dict[int, dict[int, float]] = {}
        for vid in range(6):
            items = {
                n: rng.random() for n in rng.sample(range(60), 25)
            }
            ref[vid] = items
            build(arena, vid, items)
        # Mutate a bit so tombstones and growth are in play.
        for _ in range(120):
            vid = rng.randrange(6)
            if ref[vid] and rng.random() < 0.5:
                n = rng.choice(list(ref[vid]))
                del ref[vid][n]
                arena.remove(vid, n)
            else:
                n = rng.randrange(60)
                if n in ref[vid]:
                    continue
                ref[vid][n] = rng.random()
                arena.insert(vid, n, ref[vid][n])
        for a in range(6):
            for b in range(6):
                if a == b:
                    continue
                want = sorted(set(ref[a]) & set(ref[b]))
                assert arena.common_ids(a, b).tolist() == want
                assert arena.common_count(a, b) == len(want)
                pa, pb = arena.common_payloads(a, b)
                got = sorted(
                    sorted(x) for x in zip(pa.tolist(), pb.tolist())
                )
                assert got == sorted(
                    sorted((ref[a][c], ref[b][c])) for c in want
                )
        arena.check_invariants()

    def test_empty_and_disjoint(self):
        arena = AdjacencyArena()
        build(arena, 0, {})
        build(arena, 1, {5: 1.0})
        build(arena, 2, {6: 2.0})
        assert arena.common_count(0, 1) == 0
        assert arena.common_count(1, 2) == 0
        pa, pb = arena.common_payloads(1, 2)
        assert len(pa) == 0 and len(pb) == 0
        assert arena.common_ids(0, 2).tolist() == []


class TestClear:
    def test_clear_resets(self):
        arena = AdjacencyArena()
        build(arena, 0, {1: 1.0})
        arena.clear()
        assert len(arena) == 0
        assert arena._tail == 0
        assert arena.garbage == 0
        build(arena, 0, {2: 2.0})  # usable again
        assert arena.live_degree(0) == 1
