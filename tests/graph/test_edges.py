"""Tests for canonical edge representation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SelfLoopError
from repro.graph.edges import canonical_edge


class TestCanonicalEdge:
    def test_orders_ascending(self):
        assert canonical_edge(2, 1) == (1, 2)

    def test_preserves_ascending(self):
        assert canonical_edge(1, 2) == (1, 2)

    def test_rejects_self_loop(self):
        with pytest.raises(SelfLoopError):
            canonical_edge(3, 3)

    def test_string_vertices(self):
        assert canonical_edge("b", "a") == ("a", "b")

    def test_mixed_types_deterministic(self):
        first = canonical_edge(1, "a")
        second = canonical_edge("a", 1)
        assert first == second

    @given(st.integers(), st.integers())
    def test_symmetric(self, u, v):
        if u == v:
            with pytest.raises(SelfLoopError):
                canonical_edge(u, v)
        else:
            assert canonical_edge(u, v) == canonical_edge(v, u)

    @given(st.integers(), st.integers())
    def test_result_sorted(self, u, v):
        if u != v:
            a, b = canonical_edge(u, v)
            assert a < b
