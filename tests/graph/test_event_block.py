"""EventBlock: the columnar event representation (graph/stream.py)."""

import numpy as np
import pytest

from repro.errors import SelfLoopError, StreamFormatError
from repro.graph.stream import DELETE, INSERT, EdgeEvent, EdgeStream, EventBlock


def sample_events():
    return [
        EdgeEvent.insertion(3, 1),
        EdgeEvent.insertion(1, 2),
        EdgeEvent.deletion(1, 3),
        EdgeEvent.insertion(7, 5),
        EdgeEvent.deletion(2, 1),
    ]


class TestConstruction:
    def test_from_events_round_trip(self):
        events = sample_events()
        block = EventBlock.from_events(events)
        assert len(block) == len(events)
        assert list(block) == events
        assert block.to_stream() == EdgeStream(events)

    def test_canonicalises_vectorised(self):
        block = EventBlock([True, True], [5, 2], [3, 9])
        assert block.edges() == [(3, 5), (2, 9)]

    def test_canonical_flag_skips_reordering(self):
        # Callers asserting canonical input keep their columns verbatim.
        block = EventBlock([True], [1], [2], canonical=True)
        assert block.edges() == [(1, 2)]

    def test_self_loop_rejected(self):
        with pytest.raises(SelfLoopError):
            EventBlock([True, True], [1, 4], [2, 4])

    def test_non_int_labels_rejected(self):
        with pytest.raises(TypeError):
            EventBlock.from_events([EdgeEvent.insertion("alice", "bob")])
        with pytest.raises(TypeError):
            EventBlock([True], [1.5], [2.5])

    def test_column_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            EventBlock([True, False], [1], [2])

    def test_from_triples(self):
        block = EventBlock.from_triples([(True, 4, 2), (False, 2, 4)])
        assert list(block) == [
            EdgeEvent.insertion(2, 4), EdgeEvent.deletion(2, 4),
        ]

    def test_edge_stream_to_block(self):
        stream = EdgeStream(sample_events())
        assert stream.to_block().to_stream() == stream

    def test_dtypes(self):
        block = EventBlock.from_events(sample_events())
        assert block.is_insert.dtype == np.bool_
        assert block.u.dtype == np.int64
        assert block.v.dtype == np.int64


class TestContainer:
    def test_statistics(self):
        block = EventBlock.from_events(sample_events())
        assert block.num_insertions == 3
        assert block.num_deletions == 2

    def test_indexing_and_slicing(self):
        events = sample_events()
        block = EventBlock.from_events(events)
        assert block[0] == events[0]
        assert block[-1] == events[-1]
        window = block[1:4]
        assert isinstance(window, EventBlock)
        assert list(window) == events[1:4]

    def test_equality(self):
        a = EventBlock.from_events(sample_events())
        b = EventBlock.from_events(sample_events())
        assert a == b
        assert a != a[:-1]

    def test_concat(self):
        events = sample_events()
        block = EventBlock.from_events(events)
        joined = block[:2].concat(block[2:])
        assert joined == block

    def test_columns_are_plain_lists(self):
        block = EventBlock.from_events(sample_events())
        ops, us, vs = block.columns()
        assert ops == [True, True, False, True, False]
        assert all(type(u) is int for u in us)
        assert list(zip(us, vs)) == block.edges()

    def test_empty_block(self):
        block = EventBlock([], [], [])
        assert len(block) == 0
        assert block.num_insertions == 0
        assert list(block) == []


class TestWireFormat:
    def test_bytes_round_trip(self):
        block = EventBlock.from_events(sample_events())
        assert EventBlock.from_buffer(block.to_bytes()) == block

    def test_byte_size_accounting(self):
        block = EventBlock.from_events(sample_events())
        assert block.nbytes == EventBlock.byte_size(len(block))
        assert len(block.to_bytes()) == block.nbytes

    def test_write_into_at_offset(self):
        block = EventBlock.from_events(sample_events())
        buf = bytearray(7 + block.nbytes)
        written = block.write_into(memoryview(buf)[7:])
        assert written == block.nbytes
        assert EventBlock.from_buffer(buf, offset=7) == block

    def test_decoded_arrays_own_their_memory(self):
        block = EventBlock.from_events(sample_events())
        buf = bytearray(block.to_bytes())
        decoded = EventBlock.from_buffer(buf)
        buf[:] = bytes(len(buf))  # clobber the source buffer
        assert decoded == block

    def test_bad_magic_rejected(self):
        payload = bytearray(EventBlock.from_events(sample_events()).to_bytes())
        payload[0] ^= 0xFF
        with pytest.raises(StreamFormatError):
            EventBlock.from_buffer(payload)

    def test_empty_round_trip(self):
        block = EventBlock([], [], [])
        assert EventBlock.from_buffer(block.to_bytes()) == block


class TestIterationCompat:
    def test_iter_yields_edge_events(self):
        block = EventBlock.from_events(sample_events())
        ops = [e.op for e in block]
        assert ops == [INSERT, INSERT, DELETE, INSERT, DELETE]

    def test_consumable_by_event_iterables(self):
        # Anything accepting an EdgeEvent iterable accepts a block.
        stream = EdgeStream(iter(EventBlock.from_events(sample_events())))
        assert len(stream) == 5
