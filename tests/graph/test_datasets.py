"""Tests for the dataset registry."""

import pytest

from repro.errors import DatasetError
from repro.graph.datasets import (
    DATASETS,
    TRAIN_TEST_PAIRS,
    dataset_names,
    load_dataset,
    load_edge_list,
)


class TestRegistry:
    def test_paper_dataset_names_present(self):
        for name in (
            "cit-HE", "cit-PT", "com-DB", "com-YT",
            "soc-TX", "soc-TW", "web-SF", "web-GL", "synthetic",
        ):
            assert name in DATASETS

    def test_train_test_pairs_cover_categories(self):
        assert set(TRAIN_TEST_PAIRS) == {
            "citation", "community", "social", "web", "synthetic",
        }
        for train, test in TRAIN_TEST_PAIRS.values():
            assert DATASETS[train].role == "train"
            assert DATASETS[test].role == "test"

    def test_train_smaller_than_test(self):
        for train, test in TRAIN_TEST_PAIRS.values():
            assert (
                DATASETS[train].base_vertices <= DATASETS[test].base_vertices
            )

    def test_dataset_names_filter(self):
        trains = dataset_names(role="train")
        assert "cit-HE" in trains
        assert "cit-PT" not in trains

    def test_dataset_names_all(self):
        assert len(dataset_names()) == len(DATASETS)


class TestLoadDataset:
    def test_deterministic(self):
        assert load_dataset("cit-HE") == load_dataset("cit-HE")

    def test_seed_changes_instance(self):
        assert load_dataset("cit-HE", seed=0) != load_dataset("cit-HE", seed=1)

    def test_scale_changes_size(self):
        small = load_dataset("web-SF", scale=0.5)
        large = load_dataset("web-SF", scale=1.0)
        assert len(small) < len(large)

    def test_unknown_raises(self):
        with pytest.raises(DatasetError):
            load_dataset("no-such-graph")

    def test_edges_canonical_unique(self):
        edges = load_dataset("soc-TX", scale=0.5)
        assert len(edges) == len(set(edges))
        assert all(u < v for u, v in edges)

    @pytest.mark.parametrize("name", ["cit-PT", "com-YT", "soc-TW", "web-GL"])
    def test_test_graphs_have_triangles(self, name):
        from repro.patterns import ExactCounter
        from repro.graph.stream import EdgeStream

        edges = load_dataset(name, scale=0.4)
        counter = ExactCounter("triangle")
        counter.process_stream(EdgeStream.from_edges(edges))
        assert counter.count > 0


class TestLoadEdgeList:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# comment\n1 2\n2 3\n% other comment\n3 1\n")
        assert load_edge_list(path) == [(1, 2), (2, 3), (1, 3)]

    def test_drops_self_loops_and_duplicates(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("1 1\n1 2\n2 1\n")
        assert load_edge_list(path) == [(1, 2)]

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_edge_list(tmp_path / "nope.txt")

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("1\n")
        with pytest.raises(DatasetError):
            load_edge_list(path)

    def test_extra_columns_ignored(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("1 2 1699999999\n")
        assert load_edge_list(path) == [(1, 2)]
