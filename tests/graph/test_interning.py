"""Tests for vertex interning and the zero-copy adjacency views."""

import pytest

from repro.graph.adjacency import DynamicAdjacency
from repro.graph.interning import VertexInterner


class TestVertexInterner:
    def test_dense_ids_in_first_seen_order(self):
        interner = VertexInterner()
        assert interner.intern("c") == 0
        assert interner.intern("a") == 1
        assert interner.intern("b") == 2
        assert interner.intern("a") == 1  # idempotent
        assert len(interner) == 3

    def test_label_roundtrip(self):
        interner = VertexInterner()
        for label in (10, "x", (1, 2)):
            interner.intern(label)
        for label in (10, "x", (1, 2)):
            assert interner.label(interner.id_of(label)) == label

    def test_id_of_unknown_raises(self):
        with pytest.raises(KeyError):
            VertexInterner().id_of("ghost")

    def test_sorted_uses_first_seen_order_not_repr(self):
        interner = VertexInterner()
        # repr order would be [1, 20, 3] (strings "1" < "20" < "3");
        # interned order is arrival order.
        for label in (20, 3, 1):
            interner.intern(label)
        assert interner.sorted([1, 20, 3]) == [20, 3, 1]
        assert sorted([1, 20, 3], key=interner.sort_key) == [20, 3, 1]

    def test_contains_and_clear(self):
        interner = VertexInterner()
        interner.intern("a")
        assert "a" in interner
        interner.clear()
        assert "a" not in interner
        assert len(interner) == 0
        assert interner.intern("b") == 0  # ids restart


class TestAdjacencyInterning:
    def test_vertices_interned_on_insertion(self):
        adj = DynamicAdjacency()
        adj.add_edge(5, 2)
        adj.add_edge(2, 9)
        # Canonical order of the first edge is (2, 5).
        assert adj.vertex_id(2) == 0
        assert adj.vertex_id(5) == 1
        assert adj.vertex_id(9) == 2

    def test_ids_survive_vertex_removal(self):
        adj = DynamicAdjacency()
        adj.add_edge(1, 2)
        adj.remove_edge(1, 2)  # both vertices now isolated and dropped
        assert adj.num_vertices == 0
        assert adj.vertex_id(1) is not None  # id retained
        adj.add_edge(1, 3)
        assert adj.vertex_id(1) == adj.interner.id_of(1)

    def test_sort_by_id_stable_total_order(self):
        adj = DynamicAdjacency()
        adj.add_edge("b", "a")
        adj.add_edge("a", "c")
        ordered = adj.sort_by_id({"a", "b", "c"})
        assert ordered == ["a", "b", "c"]  # canonical first-insertion order

    def test_clear_resets_interner(self):
        adj = DynamicAdjacency()
        adj.add_edge(1, 2)
        adj.clear()
        with pytest.raises(KeyError):
            adj.vertex_id(1)


class TestNeighborViews:
    def test_view_matches_neighbors(self):
        adj = DynamicAdjacency()
        adj.add_edge(1, 2)
        adj.add_edge(1, 3)
        assert set(adj.neighbors_view(1)) == {2, 3}
        assert adj.neighbors(1) == frozenset({2, 3})
        assert set(adj.iter_neighbors(1)) == {2, 3}

    def test_view_is_zero_copy_and_live(self):
        adj = DynamicAdjacency()
        adj.add_edge(1, 2)
        view = adj.neighbors_view(1)
        assert view is adj.neighbors_view(1)  # no per-call copy
        adj.add_edge(1, 3)
        assert 3 in view  # live view reflects later mutations

    def test_unknown_vertex_views_empty(self):
        adj = DynamicAdjacency()
        assert adj.neighbors_view(99) == frozenset()
        assert list(adj.iter_neighbors(99)) == []
        assert adj.neighbors(99) == frozenset()

    def test_neighbors_still_defensive_copy(self):
        adj = DynamicAdjacency()
        adj.add_edge(1, 2)
        snapshot = adj.neighbors(1)
        adj.add_edge(1, 3)
        assert snapshot == frozenset({2})


class TestCanonicalFastPaths:
    def test_add_remove_canonical_roundtrip(self):
        adj = DynamicAdjacency()
        adj.add_edge_canonical((1, 2))
        assert (1, 2) in adj
        assert adj.num_edges == 1
        adj.remove_edge_canonical((1, 2))
        assert (1, 2) not in adj
        assert adj.num_edges == 0
        assert adj.num_vertices == 0

    def test_add_canonical_duplicate_rejected(self):
        from repro.errors import EdgeExistsError

        adj = DynamicAdjacency()
        adj.add_edge_canonical((1, 2))
        with pytest.raises(EdgeExistsError):
            adj.add_edge_canonical((1, 2))

    def test_remove_canonical_missing_rejected(self):
        from repro.errors import EdgeNotFoundError

        adj = DynamicAdjacency()
        with pytest.raises(EdgeNotFoundError):
            adj.remove_edge_canonical((1, 2))
