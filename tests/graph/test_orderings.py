"""Tests for stream orderings (natural / UAR / RBFS)."""

import pytest

from repro.errors import ConfigurationError
from repro.graph.generators import erdos_renyi, forest_fire
from repro.graph.orderings import (
    ORDERINGS,
    natural_order,
    order_edges,
    rbfs_order,
    uar_order,
)


@pytest.fixture(scope="module")
def edges():
    return forest_fire(150, p=0.4, rng=3)


class TestNatural:
    def test_identity(self, edges):
        assert natural_order(edges) == edges

    def test_returns_copy(self, edges):
        result = natural_order(edges)
        result.append(("x", "y"))
        assert len(edges) != len(result) or edges is not result


class TestUAR:
    def test_is_permutation(self, edges):
        shuffled = uar_order(edges, rng=0)
        assert sorted(shuffled) == sorted(edges)

    def test_changes_order(self, edges):
        assert uar_order(edges, rng=0) != edges

    def test_deterministic(self, edges):
        assert uar_order(edges, rng=5) == uar_order(edges, rng=5)


class TestRBFS:
    def test_is_permutation(self, edges):
        ordered = rbfs_order(edges, rng=0)
        assert sorted(ordered) == sorted(edges)

    def test_deterministic(self, edges):
        assert rbfs_order(edges, rng=5) == rbfs_order(edges, rng=5)

    def test_bfs_locality(self, edges):
        """Edges incident to already-seen vertices appear early: at every
        prefix, the edge set must touch a connected vertex region."""
        ordered = rbfs_order(edges, rng=1)
        seen = set()
        for i, (u, v) in enumerate(ordered):
            if i > 0:
                # In a connected graph (forest fire is), each new edge
                # touches the visited region.
                assert u in seen or v in seen
            seen.update((u, v))

    def test_covers_disconnected_components(self):
        # Two disjoint components: both must be emitted.
        edges = [(0, 1), (1, 2), (10, 11), (11, 12)]
        ordered = rbfs_order(edges, rng=2)
        assert sorted(ordered) == sorted(edges)


class TestDispatch:
    def test_names(self):
        assert set(ORDERINGS) == {"natural", "uar", "rbfs"}

    def test_order_edges_natural(self, edges):
        assert order_edges(edges, "natural") == edges

    def test_order_edges_case_insensitive(self, edges):
        assert sorted(order_edges(edges, "UAR", rng=1)) == sorted(edges)

    def test_unknown_ordering(self, edges):
        with pytest.raises(ConfigurationError):
            order_edges(edges, "zigzag")

    def test_empty_edges(self):
        assert order_edges([], "uar", rng=0) == []

    def test_sparse_graph(self):
        edges = erdos_renyi(30, 10, rng=0)
        assert sorted(order_edges(edges, "rbfs", rng=1)) == sorted(edges)
