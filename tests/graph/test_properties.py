"""Tests for structural graph statistics (and stand-in validation)."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graph import generators
from repro.graph.datasets import load_dataset
from repro.graph.properties import (
    average_local_clustering,
    build_graph,
    degree_gini,
    degree_histogram,
    densification_exponent,
    global_clustering,
)


@pytest.fixture(scope="module")
def social_graph():
    return build_graph(
        generators.powerlaw_cluster(300, m=4, triangle_probability=0.8, rng=0)
    )


@pytest.fixture(scope="module")
def random_graph():
    return build_graph(generators.erdos_renyi(300, 1200, rng=0))


class TestDegreeHistogram:
    def test_sums_to_vertex_count(self, social_graph):
        histogram = degree_histogram(social_graph)
        assert sum(histogram.values()) == social_graph.num_vertices

    def test_handshake_lemma(self, social_graph):
        histogram = degree_histogram(social_graph)
        total_degree = sum(d * c for d, c in histogram.items())
        assert total_degree == 2 * social_graph.num_edges


class TestDegreeGini:
    def test_skewed_beats_uniform(self, social_graph, random_graph):
        assert degree_gini(social_graph) > degree_gini(random_graph)

    def test_regular_graph_zero(self):
        cycle = build_graph([(i, (i + 1) % 10) for i in range(10)])
        assert degree_gini(cycle) == pytest.approx(0.0, abs=1e-9)

    def test_empty_graph_rejected(self):
        from repro.graph.adjacency import DynamicAdjacency

        with pytest.raises(ConfigurationError):
            degree_gini(DynamicAdjacency())


class TestClustering:
    def test_global_matches_networkx(self, social_graph):
        nxg = nx.Graph(list(social_graph.edges()))
        assert global_clustering(social_graph) == pytest.approx(
            nx.transitivity(nxg)
        )

    def test_average_local_matches_networkx(self, social_graph):
        nxg = nx.Graph(list(social_graph.edges()))
        assert average_local_clustering(social_graph) == pytest.approx(
            nx.average_clustering(nxg)
        )

    def test_triangle_free_graph_zero(self):
        star = build_graph([(0, i) for i in range(1, 8)])
        assert global_clustering(star) == 0.0

    def test_complete_graph_one(self):
        k5 = build_graph(
            [(a, b) for a in range(5) for b in range(a + 1, 5)]
        )
        assert global_clustering(k5) == pytest.approx(1.0)
        assert average_local_clustering(k5) == pytest.approx(1.0)


class TestDensification:
    def test_forest_fire_densifies(self):
        edges = generators.forest_fire(800, p=0.5, rng=1)
        assert densification_exponent(edges) > 1.0

    def test_tree_does_not_densify(self):
        edges = [(0, i) for i in range(1, 400)]
        assert densification_exponent(edges) == pytest.approx(1.0, abs=0.05)

    def test_too_few_edges_rejected(self):
        with pytest.raises(ConfigurationError):
            densification_exponent([(0, 1)], samples=10)


class TestStandInValidation:
    """The dataset stand-ins must carry the structural signatures of
    their categories — the properties the substitution argument in
    DESIGN.md relies on."""

    def test_social_graphs_cluster(self):
        graph = build_graph(load_dataset("soc-TX", scale=0.6))
        assert average_local_clustering(graph) > 0.1

    def test_social_graphs_heavy_tailed(self):
        graph = build_graph(load_dataset("soc-TX", scale=0.6))
        er = build_graph(
            generators.erdos_renyi(
                graph.num_vertices, graph.num_edges, rng=0
            )
        )
        assert degree_gini(graph) > degree_gini(er) + 0.1

    def test_citation_graphs_densify(self):
        edges = load_dataset("cit-PT", scale=0.6)
        assert densification_exponent(edges) > 1.0

    def test_web_graphs_heavy_tailed(self):
        graph = build_graph(load_dataset("web-SF", scale=0.6))
        degrees = sorted(
            (graph.degree(v) for v in graph.vertices()), reverse=True
        )
        assert degrees[0] > 8 * np.median(degrees)
