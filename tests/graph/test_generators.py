"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graph import generators
from repro.graph.adjacency import DynamicAdjacency


def _build(edges):
    g = DynamicAdjacency()
    for u, v in edges:
        g.add_edge(u, v)
    return g


ALL_GENERATORS = [
    lambda rng: generators.forest_fire(300, p=0.4, rng=rng),
    lambda rng: generators.barabasi_albert(300, m=3, rng=rng),
    lambda rng: generators.powerlaw_cluster(300, m=3, rng=rng),
    lambda rng: generators.copying_model(300, rng=rng),
    lambda rng: generators.planted_partition(300, rng=rng),
    lambda rng: generators.erdos_renyi(300, 500, rng=rng),
]


@pytest.mark.parametrize("make", ALL_GENERATORS)
class TestGeneratorContracts:
    def test_no_duplicates(self, make):
        edges = make(0)
        assert len(edges) == len(set(edges))

    def test_no_self_loops(self, make):
        assert all(u != v for u, v in make(1))

    def test_canonical_form(self, make):
        assert all(u < v for u, v in make(2))

    def test_deterministic_given_seed(self, make):
        assert make(7) == make(7)

    def test_different_seeds_differ(self, make):
        assert make(1) != make(2)

    def test_buildable(self, make):
        g = _build(make(3))
        assert g.num_edges > 0


class TestForestFire:
    def test_vertex_range(self):
        edges = generators.forest_fire(100, p=0.4, rng=0)
        vertices = {v for e in edges for v in e}
        assert max(vertices) < 100

    def test_connected_arrival(self):
        """Every vertex t > 0 must link to an earlier vertex on arrival."""
        edges = generators.forest_fire(80, p=0.3, rng=0)
        seen = {0}
        for u, v in edges:
            hi, lo = max(u, v), min(u, v)
            if hi not in seen:
                assert lo in seen
                seen.add(hi)
        assert len(seen) == 80

    def test_density_grows_with_p(self):
        sparse = generators.forest_fire(400, p=0.2, rng=5)
        dense = generators.forest_fire(400, p=0.55, rng=5)
        assert len(dense) > len(sparse)

    def test_invalid_p(self):
        with pytest.raises(ConfigurationError):
            generators.forest_fire(10, p=1.5)

    def test_invalid_n(self):
        with pytest.raises(ConfigurationError):
            generators.forest_fire(0)


class TestBarabasiAlbert:
    def test_edge_count(self):
        n, m = 200, 4
        edges = generators.barabasi_albert(n, m=m, rng=0)
        # m seed edges + m per subsequent vertex.
        assert len(edges) == m + (n - m - 1) * m

    def test_degree_skew(self):
        g = _build(generators.barabasi_albert(500, m=3, rng=1))
        degrees = sorted((g.degree(v) for v in g.vertices()), reverse=True)
        assert degrees[0] > 5 * np.median(degrees)

    def test_n_must_exceed_m(self):
        with pytest.raises(ConfigurationError):
            generators.barabasi_albert(3, m=3)


class TestPowerlawCluster:
    def test_higher_closure_more_triangles(self):
        from repro.patterns.matching import brute_force_count

        low = _build(
            generators.powerlaw_cluster(250, m=4, triangle_probability=0.0, rng=2)
        )
        high = _build(
            generators.powerlaw_cluster(250, m=4, triangle_probability=0.95, rng=2)
        )
        assert brute_force_count(high, "triangle") > brute_force_count(
            low, "triangle"
        )

    def test_invalid_probability(self):
        with pytest.raises(ConfigurationError):
            generators.powerlaw_cluster(10, triangle_probability=2.0)


class TestCopyingModel:
    def test_produces_triangles(self):
        from repro.patterns.matching import brute_force_count

        g = _build(generators.copying_model(300, copy_probability=0.8, rng=3))
        assert brute_force_count(g, "triangle") > 0

    def test_invalid_out_degree(self):
        with pytest.raises(ConfigurationError):
            generators.copying_model(10, out_degree=0)


class TestPlantedPartition:
    def test_intra_community_dominates(self):
        edges = generators.planted_partition(
            400, communities=4, p_in=0.2, p_out=0.001, rng=4
        )
        intra = sum(1 for u, v in edges if u % 4 == v % 4)
        assert intra > 0.8 * len(edges)

    def test_invalid_p_in(self):
        with pytest.raises(ConfigurationError):
            generators.planted_partition(10, p_in=1.5)


class TestErdosRenyi:
    def test_exact_edge_count(self):
        assert len(generators.erdos_renyi(50, 100, rng=0)) == 100

    def test_zero_edges(self):
        assert generators.erdos_renyi(10, 0, rng=0) == []

    def test_too_many_edges_rejected(self):
        with pytest.raises(ConfigurationError):
            generators.erdos_renyi(4, 10)
