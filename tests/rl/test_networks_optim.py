"""Tests for actor/critic networks, optimisers, replay, and noise."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rl.networks import ActorNetwork, CriticNetwork
from repro.rl.noise import GaussianNoise, OrnsteinUhlenbeckNoise
from repro.rl.optim import SGD, Adam
from repro.rl.replay import ReplayBuffer
from repro.rl.tensors import Parameter


class TestActor:
    def test_action_at_least_one(self):
        actor = ActorNetwork(4, np.random.default_rng(0))
        rng = np.random.default_rng(1)
        for _ in range(50):
            assert actor.action(rng.normal(size=4)) >= 1.0

    def test_forward_shape(self):
        actor = ActorNetwork(4, np.random.default_rng(0))
        out = actor.forward(np.zeros((7, 4)))
        assert out.shape == (7, 1)

    def test_relu_plus_one_formula(self):
        actor = ActorNetwork(2, np.random.default_rng(0))
        actor.linear.weight.value[:] = [[1.0, -1.0]]
        actor.linear.bias.value[:] = [0.5]
        assert actor.action(np.array([1.0, 0.0])) == pytest.approx(2.5)
        assert actor.action(np.array([0.0, 10.0])) == pytest.approx(1.0)

    def test_copy_and_soft_update(self):
        a = ActorNetwork(3, np.random.default_rng(0))
        b = ActorNetwork(3, np.random.default_rng(1))
        b.copy_from(a)
        assert np.array_equal(
            a.linear.weight.value, b.linear.weight.value
        )
        old = b.linear.weight.value.copy()
        a.linear.weight.value += 1.0
        b.soft_update_from(a, tau=0.1)
        expected = 0.9 * old + 0.1 * a.linear.weight.value
        assert np.allclose(b.linear.weight.value, expected)


class TestCritic:
    def test_forward_shape(self):
        critic = CriticNetwork(4, rng=np.random.default_rng(0))
        q = critic.forward(np.zeros((8, 4)), np.zeros((8, 1)))
        assert q.shape == (8, 1)

    def test_accepts_flat_actions(self):
        critic = CriticNetwork(4, rng=np.random.default_rng(0))
        q = critic.forward(np.zeros((8, 4)), np.zeros(8))
        assert q.shape == (8, 1)

    def test_backward_splits_state_action(self):
        critic = CriticNetwork(4, rng=np.random.default_rng(0))
        q = critic.forward(
            np.random.default_rng(1).normal(size=(8, 4)),
            np.random.default_rng(2).normal(size=(8, 1)),
            training=True,
        )
        grad_s, grad_a = critic.backward(np.ones_like(q))
        assert grad_s.shape == (8, 4)
        assert grad_a.shape == (8, 1)

    def test_hidden_width_is_ten_by_default(self):
        critic = CriticNetwork(4, rng=np.random.default_rng(0))
        assert critic.hidden == 10


class TestAdam:
    def test_minimises_quadratic(self):
        p = Parameter(np.array([5.0, -3.0]))
        optimiser = Adam([p], lr=0.1)
        for _ in range(500):
            p.zero_grad()
            p.grad += 2.0 * p.value
            optimiser.step()
        assert np.allclose(p.value, 0.0, atol=1e-3)

    def test_invalid_lr(self):
        with pytest.raises(ConfigurationError):
            Adam([], lr=0.0)

    def test_bias_correction_first_step(self):
        p = Parameter(np.array([1.0]))
        optimiser = Adam([p], lr=0.1)
        p.grad[:] = 1.0
        optimiser.step()
        # First Adam step is ~lr * sign(grad).
        assert p.value[0] == pytest.approx(1.0 - 0.1, abs=1e-6)


class TestSGD:
    def test_step(self):
        p = Parameter(np.array([2.0]))
        optimiser = SGD([p], lr=0.5)
        p.grad[:] = 1.0
        optimiser.step()
        assert p.value[0] == pytest.approx(1.5)

    def test_momentum_accelerates(self):
        p1 = Parameter(np.array([1.0]))
        p2 = Parameter(np.array([1.0]))
        plain = SGD([p1], lr=0.1)
        momentum = SGD([p2], lr=0.1, momentum=0.9)
        for _ in range(5):
            p1.grad[:] = 1.0
            p2.grad[:] = 1.0
            plain.step()
            momentum.step()
            p1.zero_grad()
            p2.zero_grad()
        assert p2.value[0] < p1.value[0]

    def test_invalid_momentum(self):
        with pytest.raises(ConfigurationError):
            SGD([], momentum=1.0)


class TestReplayBuffer:
    def test_push_and_len(self):
        buf = ReplayBuffer(3, capacity=10, rng=0)
        buf.push(np.zeros(3), 1.0, 0.5, np.ones(3))
        assert len(buf) == 1

    def test_capacity_wraps(self):
        buf = ReplayBuffer(2, capacity=4, rng=0)
        for i in range(10):
            buf.push(np.full(2, i), float(i), 0.0, np.zeros(2))
        assert len(buf) == 4
        batch = buf.sample(32)
        # Only the last 4 states survive.
        assert set(batch.states[:, 0].astype(int)) <= {6, 7, 8, 9}

    def test_sample_shapes(self):
        buf = ReplayBuffer(5, capacity=100, rng=0)
        for i in range(20):
            buf.push(np.zeros(5), 0.0, 0.0, np.zeros(5))
        batch = buf.sample(8)
        assert batch.states.shape == (8, 5)
        assert batch.actions.shape == (8, 1)
        assert batch.rewards.shape == (8, 1)
        assert batch.next_states.shape == (8, 5)
        assert len(batch) == 8

    def test_sample_empty_raises(self):
        with pytest.raises(ConfigurationError):
            ReplayBuffer(2, capacity=4, rng=0).sample(1)

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            ReplayBuffer(2, capacity=0)


class TestNoise:
    def test_gaussian_decay(self):
        noise = GaussianNoise(sigma=1.0, decay=0.5, min_sigma=0.1, rng=0)
        noise.reset()
        assert noise.sigma == 0.5
        for _ in range(10):
            noise.reset()
        assert noise.sigma == pytest.approx(0.1)

    def test_gaussian_statistics(self):
        noise = GaussianNoise(sigma=2.0, rng=0)
        samples = np.array([noise.sample() for _ in range(5000)])
        assert abs(samples.mean()) < 0.1
        assert abs(samples.std() - 2.0) < 0.1

    def test_gaussian_invalid_sigma(self):
        with pytest.raises(ConfigurationError):
            GaussianNoise(sigma=-1.0)

    def test_ou_mean_reverts(self):
        noise = OrnsteinUhlenbeckNoise(theta=0.5, sigma=0.0, mu=0.0, rng=0)
        noise._x = 10.0
        for _ in range(50):
            noise.sample()
        assert abs(noise._x) < 0.1

    def test_ou_reset(self):
        noise = OrnsteinUhlenbeckNoise(rng=0)
        noise.sample()
        noise.reset()
        assert noise._x == noise.mu

    def test_ou_invalid_params(self):
        with pytest.raises(ConfigurationError):
            OrnsteinUhlenbeckNoise(theta=0.0)
