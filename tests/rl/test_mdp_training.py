"""Tests for the sampling MDP episode driver and the training loop."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graph.generators import powerlaw_cluster
from repro.rl.ddpg import DDPGAgent, DDPGConfig
from repro.rl.mdp import AgentWeight, SamplingEpisode
from repro.rl.training import (
    TrainingConfig,
    make_training_streams,
    train_weight_policy,
)
from repro.streams.scenarios import light_deletion_stream
from repro.weights.features import state_dimension


@pytest.fixture(scope="module")
def edges():
    return powerlaw_cluster(120, m=4, triangle_probability=0.7, rng=0)


@pytest.fixture(scope="module")
def stream(edges):
    return light_deletion_stream(edges, beta_l=0.2, rng=1)


def make_agent(warmup=32):
    return DDPGAgent(
        state_dimension(3),
        config=DDPGConfig(warmup=warmup, batch_size=32),
        rng=0,
    )


class TestAgentWeight:
    def test_records_state_and_action(self, stream):
        agent = make_agent()
        weight_fn = AgentWeight(agent)
        from repro.samplers.wsd import WSD

        sampler = WSD("triangle", 40, weight_fn, rng=2)
        for event in stream[:50]:
            sampler.process(event)
        assert weight_fn.last_state is not None
        assert weight_fn.last_state.shape == (6,)
        assert weight_fn.last_action is not None
        assert weight_fn.last_action > 0

    def test_reset_clears(self, stream):
        agent = make_agent()
        weight_fn = AgentWeight(agent)
        from repro.samplers.wsd import WSD

        sampler = WSD("triangle", 40, weight_fn, rng=2)
        sampler.process(stream[0])
        weight_fn.reset()
        assert weight_fn.last_state is None


class TestSamplingEpisode:
    def test_invalid_reward_scale(self):
        with pytest.raises(ConfigurationError):
            SamplingEpisode(make_agent(), "triangle", 40, reward_scale="huge")

    def test_run_produces_transitions(self, stream):
        agent = make_agent()
        episode = SamplingEpisode(agent, "triangle", 40, rng=3)
        stats = episode.run(stream, learn=False)
        # One transition per insertion pair.
        assert stats.transitions == stream.num_insertions - 1
        assert len(agent.replay) == stats.transitions

    def test_rewards_telescope_to_final_error(self, stream):
        """Σ r_k = ε(t_1) − ε(t_N) (Eq. 26); with ε(t_1) measured after
        the first insertion, the telescoped total matches first − final."""
        agent = make_agent()
        episode = SamplingEpisode(agent, "triangle", 40, rng=4)
        stats = episode.run(stream, learn=False)
        # total_reward telescopes: ε(first) − ε(final) == total.
        assert stats.final_error >= 0.0
        # Cross-check: replay rewards sum equals total_reward.
        rewards = agent.replay._rewards[: len(agent.replay), 0]
        assert float(np.sum(rewards)) == pytest.approx(stats.total_reward)

    def test_learning_updates_happen(self, stream):
        agent = make_agent(warmup=32)
        episode = SamplingEpisode(agent, "triangle", 40, rng=5)
        stats = episode.run(stream, learn=True, update_every=4)
        assert stats.updates > 0
        assert agent.updates == stats.updates

    def test_max_updates_cap(self, stream):
        agent = make_agent(warmup=32)
        episode = SamplingEpisode(agent, "triangle", 40, rng=6)
        stats = episode.run(stream, learn=True, update_every=1, max_updates=7)
        assert stats.updates <= 7

    def test_absolute_reward_scale(self, stream):
        agent = make_agent()
        episode = SamplingEpisode(
            agent, "triangle", 40, reward_scale="absolute", rng=7
        )
        stats = episode.run(stream, learn=False)
        assert np.isfinite(stats.total_reward)


class TestMakeTrainingStreams:
    def test_count_and_determinism(self, edges):
        streams = make_training_streams(edges, "light", 4, beta=0.2, seed=9)
        again = make_training_streams(edges, "light", 4, beta=0.2, seed=9)
        assert len(streams) == 4
        assert streams == again

    def test_streams_differ_from_each_other(self, edges):
        streams = make_training_streams(edges, "light", 3, beta=0.3, seed=9)
        assert streams[0] != streams[1]

    def test_massive_scenario(self, edges):
        streams = make_training_streams(
            edges, "massive", 2, alpha=0.02, beta=0.6, seed=9
        )
        assert any(s.num_deletions > 0 for s in streams)


class TestTrainWeightPolicy:
    def test_returns_policy_with_metadata(self, edges):
        streams = make_training_streams(edges, "light", 2, beta=0.2, seed=1)
        result = train_weight_policy(
            streams, "triangle", 40,
            config=TrainingConfig(iterations=30, num_streams=2),
            seed=2,
        )
        assert result.policy.state_dim == 6
        assert result.policy.metadata["pattern"] == "triangle"
        assert result.total_updates == 30

    def test_empty_streams_rejected(self):
        with pytest.raises(ConfigurationError):
            train_weight_policy([], "triangle", 40)

    def test_invalid_config(self, edges):
        streams = make_training_streams(edges, "light", 1, beta=0.2, seed=1)
        with pytest.raises(ConfigurationError):
            train_weight_policy(
                streams, "triangle", 40,
                config=TrainingConfig(iterations=0),
            )

    def test_deterministic_given_seed(self, edges):
        streams = make_training_streams(edges, "light", 2, beta=0.2, seed=1)
        config = TrainingConfig(iterations=20, num_streams=2)
        a = train_weight_policy(streams, "triangle", 40, config=config, seed=5)
        b = train_weight_policy(streams, "triangle", 40, config=config, seed=5)
        assert np.array_equal(a.policy.weights, b.policy.weights)
        assert a.policy.bias == b.policy.bias

    def test_different_seeds_train_different_policies(self, edges):
        streams = make_training_streams(edges, "light", 2, beta=0.2, seed=1)
        config = TrainingConfig(iterations=20, num_streams=2)
        a = train_weight_policy(streams, "triangle", 40, config=config, seed=5)
        b = train_weight_policy(streams, "triangle", 40, config=config, seed=6)
        assert not (
            np.array_equal(a.policy.weights, b.policy.weights)
            and a.policy.bias == b.policy.bias
        )

    def test_replay_rng_decoupled_from_agent_rng(self):
        """With a dedicated replay stream, unrelated draws from the
        agent's generator must not shift mini-batch selection — the
        property that keeps training seed-stable across code changes."""

        def sampled_states(extra_draws, replay_rng):
            agent = DDPGAgent(
                5, config=DDPGConfig(warmup=4, batch_size=4),
                rng=0, replay_rng=replay_rng,
            )
            rng = np.random.default_rng(1)
            for _ in range(16):
                agent.observe(
                    rng.normal(size=5), 1.0, 0.5, rng.normal(size=5)
                )
            if extra_draws:
                agent.rng.normal(size=extra_draws)
            return agent.replay.sample(4).states

        assert np.array_equal(
            sampled_states(0, replay_rng=7), sampled_states(3, replay_rng=7)
        )
        # The legacy sharing (replay_rng=None) is exactly the coupling
        # the dedicated stream removes.
        assert not np.array_equal(
            sampled_states(0, replay_rng=None),
            sampled_states(3, replay_rng=None),
        )

    def test_trained_policy_usable_by_wsd(self, edges, stream):
        from repro.samplers.wsd import WSD
        from repro.weights.learned import LearnedWeight

        streams = make_training_streams(edges, "light", 2, beta=0.2, seed=1)
        result = train_weight_policy(
            streams, "triangle", 40,
            config=TrainingConfig(iterations=40, num_streams=2), seed=3,
        )
        sampler = WSD("triangle", 40, LearnedWeight(result.policy), rng=4)
        estimate = sampler.process_stream(stream)
        assert np.isfinite(estimate)

    def test_wedge_pattern_dimension(self, edges):
        streams = make_training_streams(edges, "light", 1, beta=0.2, seed=1)
        result = train_weight_policy(
            streams, "wedge", 40,
            config=TrainingConfig(iterations=10, num_streams=1), seed=3,
        )
        assert result.policy.state_dim == 5
