"""Gradient checks and behaviour tests for the NN layers."""

import numpy as np
import pytest

from repro.rl.layers import BatchNorm1d, Linear, ReLU, Sequential


def numeric_gradient(f, x, eps=1e-6):
    """Central finite differences of a scalar function f at array x."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        old = x[idx]
        x[idx] = old + eps
        hi = f()
        x[idx] = old - eps
        lo = f()
        x[idx] = old
        grad[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return grad


class TestLinear:
    def test_forward_shape(self):
        rng = np.random.default_rng(0)
        layer = Linear(4, 3, rng)
        out = layer.forward(rng.normal(size=(5, 4)))
        assert out.shape == (5, 3)

    def test_forward_matches_manual(self):
        rng = np.random.default_rng(0)
        layer = Linear(2, 2, rng)
        x = np.array([[1.0, 2.0]])
        expected = x @ layer.weight.value.T + layer.bias.value
        assert np.allclose(layer.forward(x), expected)

    def test_backward_before_forward_raises(self):
        layer = Linear(2, 2, np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))

    def test_weight_gradient_check(self):
        rng = np.random.default_rng(1)
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(4, 3))

        def loss():
            return float(np.sum(layer.forward(x) ** 2))

        layer.zero_grad()
        out = layer.forward(x)
        layer.backward(2.0 * out)
        numeric = numeric_gradient(loss, layer.weight.value)
        assert np.allclose(layer.weight.grad, numeric, atol=1e-4)

    def test_bias_gradient_check(self):
        rng = np.random.default_rng(2)
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(4, 3))

        def loss():
            return float(np.sum(layer.forward(x) ** 2))

        layer.zero_grad()
        out = layer.forward(x)
        layer.backward(2.0 * out)
        numeric = numeric_gradient(loss, layer.bias.value)
        assert np.allclose(layer.bias.grad, numeric, atol=1e-4)

    def test_input_gradient_check(self):
        rng = np.random.default_rng(3)
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(4, 3))

        def loss():
            return float(np.sum(layer.forward(x) ** 2))

        out = layer.forward(x)
        grad_x = layer.backward(2.0 * out)
        numeric = numeric_gradient(loss, x)
        assert np.allclose(grad_x, numeric, atol=1e-4)


class TestReLU:
    def test_forward(self):
        relu = ReLU()
        x = np.array([[-1.0, 0.0, 2.0]])
        assert np.array_equal(relu.forward(x), [[0.0, 0.0, 2.0]])

    def test_backward_masks_negative(self):
        relu = ReLU()
        x = np.array([[-1.0, 3.0]])
        relu.forward(x)
        grad = relu.backward(np.array([[5.0, 5.0]]))
        assert np.array_equal(grad, [[0.0, 5.0]])

    def test_no_parameters(self):
        assert ReLU().parameters() == []


class TestBatchNorm:
    def test_training_normalises_batch(self):
        bn = BatchNorm1d(3)
        rng = np.random.default_rng(4)
        x = rng.normal(loc=5.0, scale=2.0, size=(64, 3))
        out = bn.forward(x, training=True)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-8)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-3)

    def test_running_stats_track(self):
        bn = BatchNorm1d(2, momentum=0.5)
        x = np.full((16, 2), 4.0) + np.random.default_rng(5).normal(
            size=(16, 2)
        )
        for _ in range(50):
            bn.forward(x, training=True)
        assert np.allclose(bn.running_mean, x.mean(axis=0), atol=0.2)

    def test_eval_mode_uses_running_stats(self):
        bn = BatchNorm1d(2)
        rng = np.random.default_rng(6)
        for _ in range(100):
            bn.forward(rng.normal(size=(32, 2)), training=True)
        single = bn.forward(np.zeros((1, 2)), training=False)
        expected = (
            bn.gamma.value
            * (0.0 - bn.running_mean)
            / np.sqrt(bn.running_var + bn.eps)
            + bn.beta.value
        )
        assert np.allclose(single, expected)

    def test_gradient_check(self):
        bn = BatchNorm1d(3)
        rng = np.random.default_rng(7)
        x = rng.normal(size=(8, 3))
        bn.gamma.value[:] = rng.normal(size=3)
        bn.beta.value[:] = rng.normal(size=3)

        def loss():
            return float(np.sum(bn.forward(x, training=True) ** 2))

        bn.zero_grad()
        out = bn.forward(x, training=True)
        grad_x = bn.backward(2.0 * out)
        assert np.allclose(grad_x, numeric_gradient(loss, x), atol=1e-4)
        # Parameter grads.
        bn.zero_grad()
        out = bn.forward(x, training=True)
        bn.backward(2.0 * out)
        assert np.allclose(
            bn.gamma.grad, numeric_gradient(loss, bn.gamma.value), atol=1e-4
        )
        assert np.allclose(
            bn.beta.grad, numeric_gradient(loss, bn.beta.value), atol=1e-4
        )


class TestSequential:
    def test_chain_gradient_check(self):
        rng = np.random.default_rng(8)
        net = Sequential(Linear(4, 5, rng), ReLU(), Linear(5, 1, rng))
        x = rng.normal(size=(6, 4))

        def loss():
            return float(np.sum(net.forward(x, training=True) ** 2))

        out = net.forward(x, training=True)
        grad_x = net.backward(2.0 * out)
        assert np.allclose(grad_x, numeric_gradient(loss, x), atol=1e-4)

    def test_parameters_collected(self):
        rng = np.random.default_rng(9)
        net = Sequential(Linear(2, 3, rng), ReLU(), Linear(3, 1, rng))
        assert len(net.parameters()) == 4
