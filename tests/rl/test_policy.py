"""Tests for the deployable Policy (save/load, Eq. 27 semantics)."""

import numpy as np
import pytest

from repro.errors import PolicyError
from repro.rl.networks import ActorNetwork
from repro.rl.policy import Policy


class TestPolicy:
    def test_relu_plus_one(self):
        policy = Policy(weights=np.array([1.0, -1.0]), bias=0.0)
        assert policy.action(np.array([2.0, 0.0])) == 3.0
        assert policy.action(np.array([0.0, 5.0])) == 1.0

    def test_minimum_action_is_one(self):
        policy = Policy(weights=np.array([-10.0]), bias=-10.0)
        assert policy.action(np.array([100.0])) == 1.0

    def test_dim_mismatch_raises(self):
        policy = Policy(weights=np.ones(3), bias=0.0)
        with pytest.raises(PolicyError):
            policy.action(np.ones(4))

    def test_rejects_empty_weights(self):
        with pytest.raises(PolicyError):
            Policy(weights=np.array([]), bias=0.0)

    def test_rejects_nonfinite(self):
        with pytest.raises(PolicyError):
            Policy(weights=np.array([np.nan]), bias=0.0)
        with pytest.raises(PolicyError):
            Policy(weights=np.array([1.0]), bias=np.inf)

    def test_from_actor_matches_network(self):
        actor = ActorNetwork(4, np.random.default_rng(0))
        policy = Policy.from_actor(actor, metadata={"pattern": "triangle"})
        state = np.random.default_rng(1).normal(size=4)
        assert policy.action(state) == pytest.approx(actor.action(state))
        assert policy.metadata["pattern"] == "triangle"

    def test_save_load_round_trip(self, tmp_path):
        policy = Policy(
            weights=np.array([0.5, -0.25, 1.0]),
            bias=0.125,
            metadata={"pattern": "wedge", "iterations": 100},
        )
        path = tmp_path / "policy.npz"
        policy.save(path)
        loaded = Policy.load(path)
        assert np.array_equal(loaded.weights, policy.weights)
        assert loaded.bias == policy.bias
        assert loaded.metadata == policy.metadata

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(PolicyError):
            Policy.load(tmp_path / "missing.npz")

    def test_load_malformed_file(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, something=np.ones(3))
        with pytest.raises(PolicyError):
            Policy.load(path)

    def test_state_dim(self):
        assert Policy(weights=np.ones(6), bias=0.0).state_dim == 6
