"""Tests for the DDPG agent: plumbing plus a learnability check."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rl.ddpg import DDPGAgent, DDPGConfig
from repro.rl.noise import GaussianNoise


class TestConfig:
    def test_defaults_valid(self):
        DDPGConfig().validate()

    def test_invalid_gamma(self):
        with pytest.raises(ConfigurationError):
            DDPGConfig(gamma=1.5).validate()

    def test_invalid_tau(self):
        with pytest.raises(ConfigurationError):
            DDPGConfig(tau=0.0).validate()

    def test_replay_must_hold_batch(self):
        with pytest.raises(ConfigurationError):
            DDPGConfig(batch_size=100, replay_capacity=10).validate()


class TestAgentBasics:
    def test_act_positive_and_clipped(self):
        agent = DDPGAgent(3, rng=0)
        rng = np.random.default_rng(0)
        for _ in range(50):
            action = agent.act(rng.normal(size=3), explore=True)
            assert 0.0 < action <= agent.config.max_action

    def test_act_deterministic_without_exploration(self):
        agent = DDPGAgent(3, rng=0)
        state = np.ones(3)
        assert agent.act(state, explore=False) == agent.act(
            state, explore=False
        )

    def test_targets_start_as_copies(self):
        agent = DDPGAgent(3, rng=0)
        for main, target in zip(
            agent.actor.parameters(), agent.target_actor.parameters()
        ):
            assert np.array_equal(main.value, target.value)

    def test_not_ready_until_warmup(self):
        config = DDPGConfig(warmup=10, batch_size=4)
        agent = DDPGAgent(2, config=config, rng=0)
        for i in range(9):
            agent.observe(np.zeros(2), 1.0, 0.0, np.zeros(2))
        assert not agent.ready
        agent.observe(np.zeros(2), 1.0, 0.0, np.zeros(2))
        assert agent.ready

    def test_update_returns_losses(self):
        config = DDPGConfig(warmup=8, batch_size=8)
        agent = DDPGAgent(2, config=config, rng=0)
        rng = np.random.default_rng(1)
        for _ in range(16):
            agent.observe(
                rng.normal(size=2), 1.5, rng.normal(), rng.normal(size=2)
            )
        critic_loss, actor_loss = agent.update()
        assert np.isfinite(critic_loss)
        assert np.isfinite(actor_loss)
        assert agent.updates == 1

    def test_soft_update_moves_targets(self):
        config = DDPGConfig(warmup=8, batch_size=8, tau=0.5)
        agent = DDPGAgent(2, config=config, rng=0)
        rng = np.random.default_rng(1)
        for _ in range(16):
            agent.observe(
                rng.normal(size=2), 1.5, rng.normal(), rng.normal(size=2)
            )
        before = agent.target_actor.linear.weight.value.copy()
        for _ in range(5):
            agent.update()
        after = agent.target_actor.linear.weight.value
        assert not np.array_equal(before, after)


class TestLearnability:
    def test_learns_state_dependent_action(self):
        """A contextual-bandit sanity check: reward = -(a - target(s))²
        with target(s) = 1 + 2·s₀. After training, the actor's action
        should track the target much better than at initialisation."""
        rng = np.random.default_rng(3)
        config = DDPGConfig(warmup=64, batch_size=64, gamma=0.0)
        agent = DDPGAgent(
            2, config=config,
            noise=GaussianNoise(sigma=1.0, decay=1.0, rng=4), rng=5,
        )

        def target(state):
            return 1.0 + 2.0 * state[0]

        def evaluate():
            states = [rng.normal(size=2) * 0.5 + 0.5 for _ in range(100)]
            return float(
                np.mean(
                    [
                        (agent.act(s, explore=False) - target(s)) ** 2
                        for s in states
                    ]
                )
            )

        initial_mse = evaluate()
        for step in range(4000):
            state = rng.normal(size=2) * 0.5 + 0.5
            action = agent.act(state, explore=True)
            reward = -((action - target(state)) ** 2)
            next_state = rng.normal(size=2) * 0.5 + 0.5
            agent.observe(state, action, reward, next_state)
            if agent.ready:
                agent.update()
        final_mse = evaluate()
        assert final_mse < initial_mse
        assert final_mse < 0.4
