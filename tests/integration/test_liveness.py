"""Liveness and authentication tests for the service and host tiers.

Three failure modes a long-lived deployment meets that the happy path
never shows: a peer that is *hung* rather than dead (nothing arrives,
nothing errors), an idle-but-healthy peer that must not be reaped, and
an impostor peer that speaks the protocol without holding the shared
key. The contracts: every reply wait is bounded by ``op_timeout`` and
surfaces the typed retryable :class:`OperationTimeoutError`; heartbeats
keep idle connections alive past the server's idle deadline while
silent ones are dropped; HMAC signing rejects unkeyed and wrong-keyed
peers at the handshake.
"""

import socket
import threading
import time

import numpy as np
import pytest

from repro import build_stream
from repro.errors import (
    ConfigurationError,
    OperationTimeoutError,
    ProtocolError,
    RetryableError,
    ServiceError,
)
from repro.graph.generators import powerlaw_cluster
from repro.samplers import WSD
from repro.streams import ShardedStreamExecutor
from repro.streams.host import spawn_local_host
from repro.streams.ingest import ServiceClient
from repro.streams.service import CountingService, ServiceConfig, StreamConfig
from repro.streams.transport import (
    FRAME_HELLO,
    hello_payload,
    read_frame,
    write_frame,
)
from repro.utils.rng import spawn_generators
from repro.weights.heuristic import GPSHeuristicWeight


@pytest.fixture(scope="module")
def events():
    edges = powerlaw_cluster(200, m=4, triangle_probability=0.6, rng=0)
    return list(build_stream(edges, "light", beta=0.2, rng=1))


class SilentServer:
    """Completes the HELLO handshake, then swallows every frame."""

    def __init__(self):
        self._srv = socket.create_server(("127.0.0.1", 0))
        self._srv.settimeout(5.0)
        self._stop = threading.Event()
        port = self._srv.getsockname()[1]
        self.address = f"127.0.0.1:{port}"
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        try:
            conn, _ = self._srv.accept()
        except OSError:
            return
        with conn:
            try:
                read_frame(conn)  # the client's HELLO
                write_frame(conn, FRAME_HELLO, hello_payload("service"))
                conn.settimeout(0.2)
                while not self._stop.is_set():
                    try:
                        if read_frame(conn) is None:
                            return
                    except TimeoutError:
                        continue
            except OSError:
                return

    def close(self):
        self._stop.set()
        self._srv.close()
        self._thread.join(timeout=2.0)


class TestOpTimeout:
    def test_hung_peer_bounds_every_reply_wait(self):
        server = SilentServer()
        try:
            client = ServiceClient(server.address, op_timeout=0.5)
            try:
                start = time.monotonic()
                with pytest.raises(OperationTimeoutError) as excinfo:
                    client.streams()
                elapsed = time.monotonic() - start
                assert 0.3 < elapsed < 5.0
                assert isinstance(excinfo.value, RetryableError)
                assert "0.5" in str(excinfo.value)
            finally:
                client.close()
        finally:
            server.close()

    @pytest.mark.parametrize("bad", [0, -1.0])
    def test_non_positive_op_timeout_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            ServiceClient("127.0.0.1:1", op_timeout=bad)

    @pytest.mark.parametrize("bad", [0, -0.5])
    def test_non_positive_heartbeat_interval_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            ServiceClient("127.0.0.1:1", heartbeat_interval=bad)


class TestHeartbeats:
    def test_heartbeats_keep_an_idle_client_alive(self, events):
        config = StreamConfig(budget=200, seed=5)
        with CountingService(ServiceConfig(heartbeat_timeout=1.0)) as service:
            with ServiceClient(
                service.address, heartbeat_interval=0.25
            ) as client:
                client.create_stream("hb", config)
                client.ingest(events[:200])
                before = client.estimate()
                time.sleep(1.6)  # idle well past the server's deadline
                assert client.estimate() == before

    def test_a_silent_idle_client_is_reaped(self, events):
        with CountingService(ServiceConfig(heartbeat_timeout=0.5)) as service:
            client = ServiceClient(service.address)  # no heartbeat thread
            try:
                client.create_stream("mute", StreamConfig(budget=64))
                time.sleep(1.3)
                with pytest.raises(ServiceError):
                    client.streams()
            finally:
                client.close()

    def test_reaping_one_client_spares_the_stream(self, events):
        config = StreamConfig(budget=200, seed=6)
        with CountingService(ServiceConfig(heartbeat_timeout=0.5)) as service:
            silent = ServiceClient(service.address)
            silent.create_stream("shared", config)
            silent.ingest(events[:100])
            time.sleep(1.3)  # the silent writer gets dropped...
            with ServiceClient(
                service.address, heartbeat_interval=0.2
            ) as reader:
                reader.attach("shared")  # ...but its stream lives on
                assert np.isfinite(reader.estimate())
            silent.close()


class TestServiceAuth:
    def test_shared_key_round_trip(self, events):
        config = StreamConfig(budget=200, seed=7)
        with CountingService(ServiceConfig(auth_key="sekrit")) as service:
            with ServiceClient(service.address, auth_key="sekrit") as client:
                client.create_stream("signed", config)
                client.ingest(events[:200])
                assert np.isfinite(client.estimate())

    def test_wrong_key_rejected_at_handshake(self):
        with CountingService(ServiceConfig(auth_key="sekrit")) as service:
            with pytest.raises((ProtocolError, ServiceError)):
                ServiceClient(service.address, auth_key="wrong")

    def test_unkeyed_client_rejected(self):
        with CountingService(ServiceConfig(auth_key="sekrit")) as service:
            with pytest.raises((ProtocolError, ServiceError)):
                ServiceClient(service.address)


def make_remote(host, *, seed=17, shards=2, **kwargs):
    rngs = spawn_generators(seed, shards)

    def factory(i):
        return WSD("triangle", 60, GPSHeuristicWeight(), rng=rngs[i])

    return ShardedStreamExecutor(
        factory,
        shards,
        mode="partition",
        executor_backend="remote",
        hosts=[host.address],
        **kwargs,
    )


def serial_estimate(events, *, seed=17, shards=2):
    rngs = spawn_generators(seed, shards)
    serial = ShardedStreamExecutor(
        lambda i: WSD("triangle", 60, GPSHeuristicWeight(), rng=rngs[i]),
        shards,
        mode="partition",
    )
    serial.ingest(events)
    return serial.estimate


class TestHostLeases:
    def test_heartbeats_keep_a_quiet_lease_alive(self, events):
        reference = serial_estimate(events)
        host = spawn_local_host(heartbeat_timeout=0.6)
        try:
            remote = make_remote(host, heartbeat_interval=0.15)
            try:
                remote.ingest(events[:300])
                time.sleep(1.2)  # no frames but heartbeats cross the lease
                remote.ingest(events[300:])
                assert remote.estimate == reference
            finally:
                remote.close()
        finally:
            host.stop()

    def test_keyed_lease_round_trip(self, events):
        reference = serial_estimate(events)
        host = spawn_local_host(auth_key="lease-key")
        try:
            remote = make_remote(host, auth_key="lease-key")
            try:
                remote.ingest(events)
                assert remote.estimate == reference
            finally:
                remote.close()
        finally:
            host.stop()

    def test_unkeyed_coordinator_rejected(self, events):
        import contextlib

        from repro.errors import ReproError

        host = spawn_local_host(auth_key="lease-key")
        try:
            with pytest.raises((ReproError, OSError)):
                remote = make_remote(host)
                try:
                    remote.ingest(events[:100])
                    remote.estimate  # the read barrier forces the failure
                finally:
                    with contextlib.suppress(Exception):
                        remote.close()
        finally:
            host.stop()
