"""Statistical integration tests of the paper's core claims at smoke scale.

These complement the per-module unit tests with cross-module claims:
each pins one row of EXPERIMENTS.md's summary table as an executable
assertion, at a scale small enough for CI.
"""

import numpy as np
import pytest

from repro import ExactCounter, build_stream, load_dataset
from repro.experiments.runner import compute_ground_truth, run_algorithm
from repro.samplers.gps_a import GPSA
from repro.samplers.wsd import WSD
from repro.streams.scenarios import light_deletion_stream
from repro.weights.heuristic import GPSHeuristicWeight


@pytest.fixture(scope="module")
def citation_workload():
    """A scaled cit-PT light-deletion stream with shared ground truth."""
    edges = load_dataset("cit-PT", scale=0.5, seed=0)
    stream = build_stream(edges, "light", beta=0.2, rng=1)
    truth = compute_ground_truth(stream, "triangle", 20)
    budget = max(8, stream.num_insertions // 25)
    return stream, truth, budget


class TestWeightedFamilyOrdering:
    def test_wsd_beats_gps_a(self, citation_workload):
        """WSD's clean deletions beat GPS-A's lazy tags (Section III-C):
        with identical weights and ranks, mean ARE of WSD must not
        exceed GPS-A's."""
        stream, truth, budget = citation_workload
        wsd = run_algorithm(
            "WSD-H", stream, truth, "triangle", budget, trials=12, seed=0
        )
        gpsa = run_algorithm(
            "GPS-A", stream, truth, "triangle", budget, trials=12, seed=0
        )
        assert wsd.mean_are <= gpsa.mean_are * 1.1

    def test_gps_a_wastes_budget_on_ghosts(self, citation_workload):
        """The mechanism behind the accuracy gap: GPS-A's useful sample
        shrinks below WSD's after deletions."""
        stream, _, budget = citation_workload
        wsd = WSD("triangle", budget, GPSHeuristicWeight(), rng=3)
        gpsa = GPSA("triangle", budget, GPSHeuristicWeight(), rng=3)
        for event in stream:
            wsd.process(event)
            gpsa.process(event)
        assert gpsa.num_tagged > 0
        assert gpsa.useful_sample_size < budget
        assert wsd.sample_size >= gpsa.useful_sample_size

    def test_triest_worst_uniform_baseline(self, citation_workload):
        """Triest's all-or-nothing counter gives the highest variance of
        the uniform family (Tables II/III/VIII/IX)."""
        stream, truth, budget = citation_workload
        triest = run_algorithm(
            "Triest", stream, truth, "triangle", budget, trials=12, seed=0
        )
        thinkd = run_algorithm(
            "ThinkD", stream, truth, "triangle", budget, trials=12, seed=0
        )
        assert thinkd.mean_are < triest.mean_are


class TestEstimatorConsistency:
    def test_more_budget_less_error(self, citation_workload):
        """Doubling M should not increase mean ARE meaningfully
        (Figure 2b)."""
        stream, truth, budget = citation_workload
        small = run_algorithm(
            "WSD-H", stream, truth, "triangle", budget, trials=10, seed=1
        )
        large = run_algorithm(
            "WSD-H", stream, truth, "triangle", budget * 4, trials=10, seed=1
        )
        assert large.mean_are < small.mean_are

    def test_estimates_scale_free_of_vertex_labels(self):
        """Relabelling vertices must not change the estimate given the
        same rank randomness (the algorithms never inspect labels)."""
        edges = load_dataset("cit-HE", scale=0.4, seed=0)
        relabelled = [(u + 10_000, v + 10_000) for u, v in edges]
        stream_a = light_deletion_stream(edges, beta_l=0.2, rng=5)
        stream_b = light_deletion_stream(relabelled, beta_l=0.2, rng=5)
        a = WSD("triangle", 100, GPSHeuristicWeight(), rng=9)
        b = WSD("triangle", 100, GPSHeuristicWeight(), rng=9)
        a.process_stream(stream_a)
        b.process_stream(stream_b)
        assert a.estimate == pytest.approx(b.estimate)

    def test_truth_trace_matches_independent_counter(self, citation_workload):
        stream, truth, _ = citation_workload
        independent = ExactCounter("triangle").process_stream(stream)
        assert truth.final_truth == independent


class TestVarianceStructure:
    def test_weighted_variance_depends_on_weights(self, citation_workload):
        """Different weight functions change the estimator's variance
        but not its mean (unbiasedness is weight-independent)."""
        stream, truth, budget = citation_workload
        from repro.weights.heuristic import UniformWeight

        def spread(weight_factory):
            estimates = [
                WSD(
                    "triangle", budget, weight_factory(), rng=seed
                ).process_stream(stream)
                for seed in range(25)
            ]
            return np.mean(estimates), np.std(estimates)

        mean_h, std_h = spread(GPSHeuristicWeight)
        mean_u, std_u = spread(UniformWeight)
        # Means within each other's noise band; spreads clearly differ.
        pooled = (std_h + std_u) / np.sqrt(25)
        assert abs(mean_h - mean_u) < 4 * pooled + 0.1 * truth.final_truth
        assert std_h != pytest.approx(std_u, rel=0.01)
