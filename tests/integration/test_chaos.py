"""Chaos soak: seeded fault plans end bit-equal to a serial run.

The self-healing claim, tested systematically: install a deterministic
:class:`FaultPlan` (kills, drops, corrupted and truncated frames,
worker-process murders at event thresholds), feed the stream through a
supervised process-backend session with **zero caller-side recovery
code**, and the final estimate must be bit-equal to a serial run of
the same seeded stream. Past the recovery policy's failure budget the
session must fail *deterministically* with the typed
:class:`ShardUnrecoverableError` rather than hang or corrupt.
"""

import pytest

from repro.errors import ShardUnrecoverableError
from repro.graph.generators import powerlaw_cluster
from repro.streams import build_stream
from repro.streams.executor import ExecutorOptions
from repro.streams.faults import Fault, FaultPlan
from repro.streams.service import StreamConfig, StreamSession
from repro.streams.supervisor import RecoveryPolicy


@pytest.fixture(scope="module")
def events():
    edges = powerlaw_cluster(200, m=4, triangle_probability=0.6, rng=0)
    return list(build_stream(edges, "light", beta=0.2, rng=1))


CONFIG = StreamConfig(
    algorithm="WSD-H",
    pattern="triangle",
    budget=300,
    seed=11,
    shards=2,
    mode="partition",
)

#: Fast backoff so a soak of many incidents stays seconds-scale.
FAST_RECOVERY = RecoveryPolicy(
    backoff_base=0.01, backoff_max=0.05, failure_budget=64
)


def serial_reference(events, name):
    session = StreamSession(name, CONFIG)
    try:
        session.ingest(events)
        return session.queries.estimate()
    finally:
        session.close()


def run_under_plan(events, name, plan, *, policy=FAST_RECOVERY, step=128):
    """The whole caller-side story: open, drive, read. No recovery code."""
    with plan:
        session = StreamSession(
            name,
            CONFIG,
            options=ExecutorOptions(backend="process"),
            recovery_policy=policy,
        )
        try:
            plan.drive(session, events, step=step)
            estimate = session.queries.estimate()
            stats = session.supervisor.stats()
        finally:
            session.close()
    return estimate, stats


class TestChaosMatrix:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_random_transport_faults_end_bit_equal(self, events, seed):
        name = f"chaos-{seed}"
        reference = serial_reference(events, name)
        plan = FaultPlan.random(
            seed, num_shards=CONFIG.shards, max_send=6, count=2
        )
        estimate, stats = run_under_plan(events, name, plan)
        assert estimate == reference
        # Deaths were healed by the supervisor, not by luck. (One
        # incident can heal several faults — a cascade discovered
        # during replay stays a single recovery.)
        deaths = [f for f in plan.fired if f["kind"] in ("kill", "drop")]
        if deaths:
            assert stats["recoveries"] >= 1
            assert (
                sum(stats["failures"]) + stats["anonymous_failures"]
                >= len(deaths)
            )

    def test_worker_murder_at_event_thresholds(self, events):
        name = "chaos-murder"
        reference = serial_reference(events, name)
        plan = FaultPlan(
            [
                Fault("kill_worker", shard=0, at_event=128),
                Fault("kill_worker", shard=1, at_event=384),
            ]
        )
        estimate, stats = run_under_plan(events, name, plan)
        assert estimate == reference
        assert len(plan.fired) == 2
        assert stats["recoveries"] >= 1

    def test_mixed_plan_with_payload_mangling(self, events):
        name = "chaos-mixed"
        reference = serial_reference(events, name)
        plan = FaultPlan(
            [
                Fault("corrupt", shard=0, at_send=1),
                Fault("truncate", shard=1, at_send=2),
                Fault("kill_worker", shard=1, at_event=256),
            ]
        )
        estimate, _ = run_under_plan(events, name, plan)
        assert estimate == reference
        assert {f["kind"] for f in plan.fired} == {
            "corrupt",
            "truncate",
            "kill_worker",
        }

    def test_the_same_plan_replays_identically(self, events):
        name = "chaos-replay"
        reference = serial_reference(events, name)
        first, _ = run_under_plan(
            events, name, FaultPlan.random(9, num_shards=2, max_send=6)
        )
        second, _ = run_under_plan(
            events, name, FaultPlan.random(9, num_shards=2, max_send=6)
        )
        assert first == second == reference


class TestFailureBudget:
    def make_plan(self):
        return FaultPlan(
            [
                Fault("kill", shard=0, at_send=1),
                Fault("kill", shard=0, at_send=3),
                Fault("kill", shard=0, at_send=5),
            ]
        )

    def run_to_exhaustion(self, events):
        policy = RecoveryPolicy(
            backoff_base=0.01, backoff_max=0.05, failure_budget=2
        )
        with self.make_plan():
            session = StreamSession(
                "chaos-budget",
                CONFIG,
                options=ExecutorOptions(backend="process"),
                recovery_policy=policy,
            )
            try:
                with pytest.raises(ShardUnrecoverableError) as excinfo:
                    for start in range(0, len(events), 64):
                        session.ingest(events[start:start + 64])
                    session.queries.estimate()
                return excinfo.value
            finally:
                session.close()

    def test_exhaustion_is_typed_and_deterministic(self, events):
        first = self.run_to_exhaustion(events)
        second = self.run_to_exhaustion(events)
        assert first.shard_index == second.shard_index == 0
        assert type(first) is type(second) is ShardUnrecoverableError
        assert first.failures == second.failures
