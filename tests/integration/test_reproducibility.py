"""Reproducibility: the whole pipeline is a pure function of its seeds.

The paper's tables are averages over repetitions; for a reproduction,
*bitwise determinism given seeds* is the property that makes results
auditable. These tests pin it at every level: dataset generation,
scenario construction, policy training, and full table cells.
"""

import numpy as np

from repro.experiments.algorithms import PolicyStore
from repro.experiments.config import LIGHT, ExperimentConfig
from repro.experiments.runner import compute_ground_truth, run_algorithm
from repro.experiments.tables import table_counts


class TestCellDeterminism:
    def test_same_seed_same_cell(self):
        """Two independent runs of one cell agree to the last digit."""

        def run():
            config = ExperimentConfig(
                dataset="cit-HE", scenario=LIGHT, dataset_scale=0.4,
                trials=3, checkpoints=10, seed=11,
            )
            stream = config.build_stream()
            truth = compute_ground_truth(stream, "triangle", 10)
            budget = config.effective_budget(stream)
            result = run_algorithm(
                "WSD-H", stream, truth, "triangle", budget,
                trials=3, seed=11,
            )
            return result.ares, result.mares

        first = run()
        second = run()
        assert first == second

    def test_different_seed_different_cell(self):
        def run(seed):
            config = ExperimentConfig(
                dataset="cit-HE", scenario=LIGHT, dataset_scale=0.4,
                trials=3, checkpoints=10, seed=seed,
            )
            stream = config.build_stream()
            truth = compute_ground_truth(stream, "triangle", 10)
            result = run_algorithm(
                "ThinkD", stream, truth, "triangle",
                config.effective_budget(stream), trials=3, seed=seed,
            )
            return tuple(result.ares)

        assert run(1) != run(2)


class TestPolicyDeterminism:
    def test_store_training_deterministic(self):
        a = PolicyStore(
            iterations=25, num_streams=1, dataset_scale=0.4, seed=5
        ).get("cit-HE", "triangle", LIGHT)
        b = PolicyStore(
            iterations=25, num_streams=1, dataset_scale=0.4, seed=5
        ).get("cit-HE", "triangle", LIGHT)
        assert np.array_equal(a.weights, b.weights)
        assert a.bias == b.bias


class TestTableDeterminism:
    def test_table_counts_reproducible(self):
        kwargs = dict(
            pattern="triangle",
            scenario="light",
            datasets=("cit-HE",),
            algorithms=("WSD-H", "Triest"),
            trials=2,
            dataset_scale=0.4,
            seed=3,
        )
        first = table_counts(**kwargs)
        second = table_counts(**kwargs)
        # Error metrics are deterministic; the Time (s) section is
        # wall-clock and legitimately varies between runs.
        assert first.raw["ARE (%)"] == second.raw["ARE (%)"]
        assert first.raw["MARE (%)"] == second.raw["MARE (%)"]
