"""End-to-end integration tests: the full train → deploy → count pipeline."""

import subprocess
import sys

import numpy as np

import repro
from repro import (
    ExactCounter,
    GPSHeuristicWeight,
    LearnedWeight,
    Policy,
    WSD,
    build_stream,
    load_dataset,
    train_weight_policy,
)
from repro.rl.training import TrainingConfig, make_training_streams


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolvable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_from_docstring(self):
        """The quickstart in repro/__init__ must actually run."""
        from repro.graph.generators import forest_fire

        edges = forest_fire(300, p=0.5, rng=0)
        stream = build_stream(edges, "massive", rng=1)
        sampler = WSD(
            "triangle", budget=200, weight_fn=GPSHeuristicWeight(), rng=2
        )
        estimate = sampler.process_stream(stream)
        assert np.isfinite(estimate)


class TestTrainDeployCount:
    def test_full_pipeline(self, tmp_path):
        """Train on cit-HE, persist, reload, count on cit-PT: the paper's
        workflow end to end, checking WSD-L is sane and finite."""
        train_edges = load_dataset("cit-HE", scale=0.4, seed=0)
        streams = make_training_streams(
            train_edges, "light", num_streams=2, beta=0.2, seed=1
        )
        result = train_weight_policy(
            streams, "triangle", budget=max(8, len(train_edges) // 25),
            config=TrainingConfig(iterations=60, num_streams=2), seed=2,
        )
        path = tmp_path / "policy.npz"
        result.policy.save(path)
        policy = Policy.load(path)

        test_edges = load_dataset("cit-PT", scale=0.4, seed=0)
        stream = build_stream(test_edges, "light", beta=0.2, rng=3)
        truth = ExactCounter("triangle").process_stream(stream)
        assert truth > 0

        budget = max(8, stream.num_insertions // 25)
        estimates = [
            WSD("triangle", budget, LearnedWeight(policy), rng=s)
            .process_stream(stream)
            for s in range(10)
        ]
        mean = np.mean(estimates)
        # Sanity: the learned sampler is in the right ballpark (well
        # within an order of magnitude) and unbiased-ish.
        assert 0.2 * truth < mean < 5.0 * truth

    def test_learned_no_worse_than_heuristic(self):
        """The paper's core claim at smoke scale: mean ARE of WSD-L must
        not exceed that of WSD-H on a same-category test stream."""
        train_edges = load_dataset("com-DB", scale=0.4, seed=0)
        streams = make_training_streams(
            train_edges, "light", num_streams=2, beta=0.2, seed=1
        )
        result = train_weight_policy(
            streams, "triangle", budget=max(8, len(train_edges) // 25),
            config=TrainingConfig(iterations=150, num_streams=2), seed=2,
        )
        test_edges = load_dataset("com-YT", scale=0.3, seed=0)
        stream = build_stream(test_edges, "light", beta=0.2, rng=3)
        truth = ExactCounter("triangle").process_stream(stream)
        budget = max(8, stream.num_insertions // 25)

        def mean_are(weight_fn_factory):
            ares = []
            for seed in range(8):
                sampler = WSD("triangle", budget, weight_fn_factory(), rng=seed)
                est = sampler.process_stream(stream)
                ares.append(abs(est - truth) / truth)
            return float(np.mean(ares))

        learned = mean_are(lambda: LearnedWeight(result.policy))
        heuristic = mean_are(GPSHeuristicWeight)
        assert learned <= heuristic * 1.25  # small tolerance for noise


class TestCLISubprocess:
    def test_cli_list_via_subprocess(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.experiments.cli", "--list"],
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0
        assert "table2" in proc.stdout
