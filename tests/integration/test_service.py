"""Integration tests for the counting-service tier.

The load-bearing claim: hosting a stream behind the service — TCP
ingestion, concurrent queries, worker crashes, whole-service restarts —
never changes a single bit of the estimate relative to the same events
fed to a serial in-process session. Every test here is some corruption
of the happy path (kill a worker, kill the service, interleave readers)
followed by that bit-identity assertion.
"""

import json
import threading

import numpy as np
import pytest

import repro
from repro import build_stream
from repro.errors import ConfigurationError, ServiceError
from repro.graph.generators import powerlaw_cluster
from repro.streams.executor import ExecutorOptions
from repro.streams.ingest import ServiceClient
from repro.streams.service import (
    CountingService,
    ServiceConfig,
    StreamConfig,
    StreamSession,
)


@pytest.fixture(scope="module")
def events():
    edges = powerlaw_cluster(300, m=4, triangle_probability=0.6, rng=0)
    stream = build_stream(edges, "light", beta=0.2, rng=1)
    return list(stream)


def serial_reference(events, config, name):
    with repro.open_stream(config, name=name) as session:
        session.ingest(events)
        return session.queries.estimate()


class TestOpenStream:
    def test_kwargs_build_a_config(self, events):
        session = repro.open_stream(
            algorithm="WSD-H", pattern="triangle", budget=300, seed=7
        )
        session.ingest(events)
        estimate = session.queries.estimate()
        assert np.isfinite(estimate)
        assert session.clock == len(events)
        session.close()

    def test_config_and_kwargs_both_rejected(self):
        with pytest.raises(ConfigurationError, match="not both"):
            repro.open_stream(StreamConfig(), budget=10)

    def test_name_is_part_of_stream_identity(self, events):
        config = StreamConfig(budget=300, seed=7)
        a = serial_reference(events, config, "alpha")
        b = serial_reference(events, config, "beta")
        a_again = serial_reference(events, config, "alpha")
        assert a == a_again
        assert a != b  # different names spawn different shard rngs

    def test_chunking_never_changes_the_estimate(self, events):
        config = StreamConfig(budget=300, seed=7)
        whole = serial_reference(events, config, "chunks")
        session = repro.open_stream(config, name="chunks")
        for start in range(0, len(events), 83):
            session.ingest(events[start:start + 83])
        assert session.queries.estimate() == whole
        session.close()

    def test_wsd_l_is_rejected_with_guidance(self):
        with pytest.raises(ConfigurationError, match="WSD-L"):
            StreamConfig(algorithm="WSD-L").validate()

    def test_track_local_requires_one_shard(self):
        with pytest.raises(ConfigurationError, match="track_local"):
            StreamConfig(track_local=True, shards=2).validate()

    def test_track_local_requires_serial_backend(self):
        with pytest.raises(ConfigurationError, match="serial"):
            StreamSession(
                "local-proc",
                StreamConfig(track_local=True),
                options=ExecutorOptions(backend="process"),
            )


class TestServiceSocket:
    def test_roundtrip_queries_and_errors(self, events, tmp_path):
        config = StreamConfig(budget=300, seed=11, track_local=True)
        reference = serial_reference(events, config, "feed")
        with CountingService(
            ServiceConfig(state_dir=tmp_path, checkpoint_interval=None)
        ) as service:
            with ServiceClient(service.address) as client:
                info = client.create_stream("feed", config)
                assert info == {"name": "feed", "clock": 0}
                assert client.streams() == ["feed"]
                for start in range(0, len(events), 256):
                    client.send_events(events[start:start + 256])
                assert client.estimate() == reference
                assert client.time() == len(events)
                stats = client.stats()
                assert stats["clock"] == len(events)
                assert stats["estimate"] == reference
                assert sum(stats["shard_times"]) == len(events)
                top = client.top_vertices(k=5)
                assert len(top) == 5
                counts = client.local_counts([top[0][0]])
                assert counts[top[0][0]] == top[0][1]
                # a control failure reports the remote traceback and
                # keeps the connection serving
                with pytest.raises(ServiceError, match="unknown query"):
                    client.query("no-such-kind")
                assert client.estimate() == reference
                ck = client.checkpoint()
                assert ck == {"clock": len(events), "durable": True}
            # a second connection attaches to the same tenant
            with ServiceClient(service.address) as other:
                info = other.attach("feed")
                assert info["clock"] == len(events)
                assert info["config"] == config.to_dict()
                assert other.estimate() == reference
                with pytest.raises(ServiceError, match="no stream named"):
                    other.attach("nope")

    def test_duplicate_create_rejected(self, tmp_path):
        with CountingService(ServiceConfig()) as service:
            with ServiceClient(service.address) as client:
                client.create_stream("dup", StreamConfig(budget=64))
                with pytest.raises(ServiceError, match="already exists"):
                    client.create_stream("dup", StreamConfig(budget=64))

    def test_block_before_attach_drops_connection(self, events):
        from repro.graph.stream import EventBlock

        with CountingService(ServiceConfig()) as service:
            client = ServiceClient(service.address)
            client.send_block(EventBlock.from_events(events[:16]))
            with pytest.raises(ServiceError, match="before create/attach"):
                client.estimate()
            client.close()


class TestDurability:
    def test_restore_is_a_bit_identical_continuation(self, events, tmp_path):
        config = StreamConfig(budget=300, seed=13, track_local=True)
        reference = serial_reference(events, config, "durable")
        half = len(events) // 2

        first = StreamSession(
            "durable", config, state_dir=tmp_path
        )
        first.ingest(events[:half])
        top_before = first.queries.top_vertices(5)
        first.checkpoint()
        first.close()

        second = StreamSession.restore("durable", tmp_path)
        assert second.clock == half
        assert second.queries.top_vertices(5) == top_before
        second.ingest(events[half:])
        assert second.queries.estimate() == reference
        second.close()

    def test_generations_are_committed_atomically(self, events, tmp_path):
        config = StreamConfig(budget=300, seed=13)
        session = StreamSession("gen", config, state_dir=tmp_path)
        session.ingest(events[:200])
        session.checkpoint()
        session.ingest(events[200:400])
        session.checkpoint()
        session.close()

        directory = tmp_path / "gen"
        manifest = json.loads((directory / "manifest.json").read_text())
        assert manifest["generation"] == 2
        on_disk = {p.name for p in directory.iterdir()}
        # the committed generation AND its predecessor are retained
        # (the fallback target if generation 2 turns out corrupt);
        # anything older is pruned
        assert on_disk == {
            "manifest.json",
            "manifest-g000001.json",
            "manifest-g000002.json",
            "shard-0000-g000001.ckpt",
            *manifest["shard_files"],
        }
        # stray files from a hypothetical torn write do not break restore
        (directory / "shard-0000-g000099.ckpt").write_bytes(b"garbage")
        restored = StreamSession.restore("gen", tmp_path)
        assert restored.clock == 400
        restored.ingest(events[400:600])
        restored.checkpoint()  # generation 3: generation 1 is pruned
        restored.close()
        on_disk = {p.name for p in directory.iterdir()}
        assert "shard-0000-g000001.ckpt" not in on_disk
        assert "manifest-g000001.json" not in on_disk
        assert "shard-0000-g000002.ckpt" in on_disk
        assert "shard-0000-g000099.ckpt" not in on_disk  # unrecognised gen swept

    def test_service_restores_every_tenant_at_boot(self, events, tmp_path):
        config_a = StreamConfig(budget=200, seed=1)
        config_b = StreamConfig(budget=300, seed=2)
        with CountingService(
            ServiceConfig(state_dir=tmp_path, checkpoint_interval=None)
        ) as service:
            with ServiceClient(service.address) as client:
                client.create_stream("a", config_a)
                client.send_events(events[:300])
                # block pushes are fire-and-forget: a barrier query
                # before disconnecting guarantees they were applied
                assert client.time() == 300
            with ServiceClient(service.address) as client:
                client.create_stream("b", config_b)
                client.send_events(events[:500])
                assert client.time() == 500
        # stop() checkpointed both; a fresh service restores both
        reborn = CountingService(
            ServiceConfig(state_dir=tmp_path, checkpoint_interval=None)
        )
        assert reborn.streams() == ("a", "b")
        assert reborn.get_stream("a").clock == 300
        assert reborn.get_stream("b").clock == 500
        reborn.stop()


class TestSoak:
    """The headline scenario: socket ingest + concurrent queries +
    a worker kill + a whole-service restart, ending bit-identical."""

    def test_kill_worker_then_restart_service(self, events, tmp_path):
        config = StreamConfig(
            budget=400, seed=5, shards=2, mode="partition"
        )
        reference = serial_reference(events, config, "soak")
        step = 113
        sent = 0

        service = CountingService(
            ServiceConfig(
                state_dir=tmp_path,
                checkpoint_interval=None,
                executor=ExecutorOptions(backend="process", chunk_size=256),
            )
        )
        address = service.start()
        client = ServiceClient(address)
        client.create_stream("soak", config)

        # concurrent reader on its own connection, querying throughout
        stop_reading = threading.Event()
        reader_failures: list[BaseException] = []

        def read_loop() -> None:
            try:
                with ServiceClient(address) as reader:
                    reader.attach("soak")
                    while not stop_reading.is_set():
                        assert np.isfinite(reader.estimate())
            except BaseException as exc:  # surfaced by the main thread
                reader_failures.append(exc)

        reader_thread = threading.Thread(target=read_loop, daemon=True)
        reader_thread.start()

        third = len(events) // 3
        while sent < third:
            client.send_events(events[sent:sent + step])
            sent += step
        assert client.checkpoint()["clock"] == sent

        # kill one worker process mid-stream; ingestion must recover
        # via restart_shard + WAL replay without losing an event
        session = service.get_stream("soak")
        session.executor._workers[1].transport.process.kill()

        while sent < 2 * third:
            client.send_events(events[sent:sent + step])
            sent += step
        assert client.time() == sent  # recovery was invisible

        stop_reading.set()
        reader_thread.join(timeout=30)
        assert not reader_failures
        client.checkpoint()
        client.close()
        service.stop()  # kills the remaining workers with the service

        # a new service process restores the tenant from disk and the
        # stream finishes exactly where a serial run would
        reborn = CountingService(
            ServiceConfig(state_dir=tmp_path, checkpoint_interval=None)
        )
        address = reborn.start()
        with ServiceClient(address) as client:
            info = client.attach("soak")
            assert info["clock"] == sent
            while sent < len(events):
                client.send_events(events[sent:sent + step])
                sent += step
            assert client.time() == len(events)
            assert client.estimate() == reference
        reborn.stop()
