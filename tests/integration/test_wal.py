"""Integration tests for the bounded write-ahead log.

The two observable contracts of WAL backpressure: (1) *spill* — under a
durable session that never checkpoints, in-memory WAL growth is bounded
by ``wal_spill_events`` while every spilled segment remains replayable
in order, so recovery from the segments is bit-identical to a serial
run; (2) *hard limit* — past ``wal_hard_limit_events`` total events an
ingest batch is rejected atomically with a typed, retry-hinted
overload error, the stream stays queryable, and a checkpoint unblocks
ingestion.
"""

import pytest

import repro
from repro import build_stream
from repro.errors import ServiceOverloadedError
from repro.graph.generators import powerlaw_cluster
from repro.streams.service import StreamConfig, StreamSession


@pytest.fixture(scope="module")
def events():
    edges = powerlaw_cluster(300, m=4, triangle_probability=0.6, rng=0)
    stream = build_stream(edges, "light", beta=0.2, rng=1)
    return list(stream)


def serial_reference(events, config, name):
    session = repro.open_stream(config, name=name)
    session.ingest(events)
    estimate = session.queries.estimate()
    session.close()
    return estimate


CONFIG = StreamConfig(algorithm="WSD-H", pattern="triangle", budget=400, seed=3)


class TestSpill:
    def test_memory_stays_bounded_without_checkpoints(self, events, tmp_path):
        session = StreamSession(
            "spill",
            CONFIG,
            state_dir=tmp_path,
            wal_spill_events=64,
            wal_limit_events=10**9,  # the limit snapshot never fires
        )
        for start in range(0, len(events), 50):
            session.ingest(events[start:start + 50])
            assert session.wal_stats()["memory_events"] < 64
        stats = session.wal_stats()
        assert stats["segments"] > 0
        assert stats["spilled_events"] > 0
        assert stats["spilled_events"] + stats["memory_events"] == stats["events"]
        assert stats["events"] == len(events)
        assert stats["aligned"]
        # Spilling is pure bookkeeping: the estimate is untouched.
        assert session.queries.estimate() == serial_reference(
            events, CONFIG, "spill"
        )
        # The segments really are on disk, named by base generation.
        segment_files = sorted((session.state_path / "wal").iterdir())
        assert len(segment_files) == stats["segments"]
        assert all(f.name.startswith("wal-g000000-") for f in segment_files)
        session.close()

    def test_recovery_from_spilled_segments_is_bit_identical(
        self, events, tmp_path
    ):
        reference = serial_reference(events, CONFIG, "spill-recover")
        half = len(events) // 2
        session = StreamSession(
            "spill-recover",
            CONFIG,
            state_dir=tmp_path,
            wal_spill_events=1,  # every batch spills: nothing only-in-memory
            wal_limit_events=10**9,
        )
        session.ingest(events[:half])
        session.checkpoint()
        for start in range(half, len(events), 97):
            session.ingest(events[start:start + 97])
        stats = session.wal_stats()
        assert stats["memory_events"] == 0  # the crash can lose nothing
        assert stats["segments"] > 0
        session.close()  # crash: no final checkpoint — only segments remain

        restored = StreamSession.restore("spill-recover", tmp_path)
        assert restored.clock == len(events)
        assert restored.queries.estimate() == reference
        # Restore replays then checkpoints, so the segments are swept.
        assert restored.wal_stats()["segments"] == 0
        restored.close()

        # Restoring again from the rolled-up checkpoint changes nothing.
        again = StreamSession.restore("spill-recover", tmp_path)
        assert again.queries.estimate() == reference
        again.close()

    def test_non_durable_session_falls_back_to_snapshot(self, events):
        session = StreamSession(
            "no-disk",
            CONFIG,
            wal_spill_events=32,
            wal_limit_events=10**9,
        )
        for start in range(0, len(events), 40):
            session.ingest(events[start:start + 40])
        stats = session.wal_stats()
        assert stats["segments"] == 0
        assert stats["spilled_events"] == 0
        assert stats["memory_events"] < 32  # snapshot barrier trimmed instead
        assert session.queries.estimate() == serial_reference(
            events, CONFIG, "no-disk"
        )
        session.close()

    def test_snapshot_misalignment_heals_via_checkpoint(self, events, tmp_path):
        session = StreamSession(
            "realign",
            CONFIG,
            state_dir=tmp_path,
            wal_spill_events=64,
            wal_limit_events=10**9,
        )
        session.ingest(events[:50])
        assert session.wal_stats()["aligned"]
        session.snapshot()  # in-memory cut: segments would not be replayable
        assert not session.wal_stats()["aligned"]
        session.ingest(events[50:150])  # crosses the spill threshold
        stats = session.wal_stats()
        assert stats["aligned"]  # healed by a full checkpoint, not a spill
        assert stats["segments"] == 0
        session.close()


class TestHardLimit:
    def test_overload_is_atomic_and_recoverable(self, events):
        session = StreamSession(
            "overload",
            CONFIG,
            wal_hard_limit_events=100,
            wal_limit_events=10**9,
        )
        session.ingest(events[:80])
        with pytest.raises(ServiceOverloadedError) as excinfo:
            session.ingest(events[80:120])
        assert excinfo.value.retry_after == session.retry_after_hint
        assert "hard limit" in str(excinfo.value)
        # Atomic reject: nothing appended, nothing dispatched.
        assert session.clock == 80
        assert session.wal_stats()["events"] == 80
        # The stream stays live for readers while shedding writers.
        assert session.queries.estimate() is not None
        # A checkpoint trims the log and ingestion resumes.
        session.checkpoint()
        session.ingest(events[80:120])
        assert session.clock == 120
        session.close()

    def test_small_batches_still_fill_the_limit(self, events):
        session = StreamSession(
            "drip", CONFIG, wal_hard_limit_events=30, wal_limit_events=10**9
        )
        session.ingest(events[:30])  # exactly at the limit is accepted
        with pytest.raises(ServiceOverloadedError):
            session.ingest(events[30:31])
        session.close()

    def test_limits_validated_against_each_other(self, tmp_path):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="exceed"):
            StreamSession(
                "bad",
                CONFIG,
                state_dir=tmp_path,
                wal_spill_events=100,
                wal_hard_limit_events=100,
            )
