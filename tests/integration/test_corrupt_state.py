"""Hostile bytes at rest and on the wire: quarantine + typed rejection.

The robustness contract under test: persisted state that fails
validation (truncated, bit-flipped, zero-length, malformed) is
quarantined — renamed into the stream's ``quarantine/`` directory with
a :class:`CorruptStateWarning` — and the service restores from the
newest state that validates, instead of crashing or silently reading
garbage. On the wire, cross-version peers and unknown weight specs are
rejected with typed errors at handshake/lease time.
"""

import json
import shutil
import socket
import struct
import threading
import time

import pytest

from repro import build_stream
from repro.errors import CorruptStateWarning, ServiceError
from repro.graph.generators import powerlaw_cluster
from repro.streams.codec import decode, encode, wal_from_wire
from repro.streams.host import HostAgent
from repro.streams.service import (
    CountingService,
    ServiceConfig,
    StreamConfig,
    StreamSession,
)
from repro.streams.transport import (
    _FRAME_HEADER,
    _FRAME_MAGIC,
    FRAME_CONTROL,
    FRAME_HELLO,
    PROTOCOL_VERSION,
    frame_bytes,
    hello_payload,
    parse_address,
    read_frame,
)


@pytest.fixture(scope="module")
def events():
    edges = powerlaw_cluster(260, m=4, triangle_probability=0.6, rng=3)
    stream = build_stream(edges, "light", beta=0.2, rng=4)
    return list(stream)


def _spilled_state_dir(events, tmp_path):
    """A stream directory with a committed checkpoint at clock 200
    plus spilled WAL segments on top (the crashed-process shape)."""
    session = StreamSession(
        "victim",
        StreamConfig(budget=200, seed=11),
        state_dir=tmp_path,
        wal_spill_events=40,
    )
    session.ingest(events[:200])
    session.checkpoint()
    for start in range(200, 500, 50):
        session.ingest(events[start : start + 50])
    stats = session.wal_stats()
    assert stats["segments"] >= 2, "setup must spill several segments"
    # Crash: tear the executor down without checkpointing, so the
    # spilled segments are the only trace of the post-checkpoint events.
    session.close()
    return stats


class TestWalQuarantine:
    def _restore(self):
        return StreamSession.restore("victim", self._dir)

    def _segments(self, tmp_path):
        return sorted((tmp_path / "victim" / "wal").iterdir())

    def test_clean_restore_replays_all_segments(self, events, tmp_path):
        stats = _spilled_state_dir(events, tmp_path)
        restored = StreamSession.restore("victim", tmp_path)
        assert restored.clock == 200 + stats["spilled_events"]
        assert restored.wal_stats()["quarantined_segments"] == 0
        restored.close()

    @pytest.mark.parametrize(
        "corruption",
        ["truncate", "bit_flip", "zero_length"],
    )
    def test_corrupt_first_segment_quarantines_all(
        self, events, tmp_path, corruption
    ):
        _spilled_state_dir(events, tmp_path)
        segments = self._segments(tmp_path)
        first = segments[0]
        blob = first.read_bytes()
        if corruption == "truncate":
            first.write_bytes(blob[: len(blob) // 2])
        elif corruption == "bit_flip":
            mangled = bytearray(blob)
            mangled[len(mangled) // 2] ^= 0x10
            first.write_bytes(bytes(mangled))
        else:
            first.write_bytes(b"")
        with pytest.warns(CorruptStateWarning, match="quarantined"):
            restored = StreamSession.restore("victim", tmp_path)
        # Nothing replayable survived the gap: back to the checkpoint.
        assert restored.clock == 200
        quarantine = tmp_path / "victim" / "quarantine"
        assert len(list(quarantine.iterdir())) == len(segments)
        restored.close()

    def test_corrupt_middle_segment_keeps_the_prefix(
        self, events, tmp_path
    ):
        _spilled_state_dir(events, tmp_path)
        segments = self._segments(tmp_path)
        prefix_events = sum(
            sum(len(entry) for entry in wal_from_wire(path.read_bytes()))
            for path in segments[:1]
        )
        target = segments[1]
        mangled = bytearray(target.read_bytes())
        mangled[-1] ^= 0xFF
        target.write_bytes(bytes(mangled))
        with pytest.warns(CorruptStateWarning):
            restored = StreamSession.restore("victim", tmp_path)
        assert restored.clock == 200 + prefix_events
        assert restored.wal_stats()["quarantined_segments"] == (
            len(segments) - 1
        )
        restored.close()

    def test_restore_after_quarantine_is_rerunnable(self, events, tmp_path):
        """The quarantined files stay out of the way of later restores."""
        _spilled_state_dir(events, tmp_path)
        self._segments(tmp_path)[0].write_bytes(b"")
        with pytest.warns(CorruptStateWarning):
            first = StreamSession.restore("victim", tmp_path)
        clock = first.clock
        first.ingest(events[500:550])
        first.checkpoint()
        first.close()
        second = StreamSession.restore("victim", tmp_path)
        assert second.clock == clock + 50
        assert second.wal_stats()["quarantined_segments"] == 0
        second.close()


def _checkpointed_state_dir(events, tmp_path):
    """Two committed generations: clock 100 at g1, clock 200 at g2."""
    session = StreamSession(
        "gen", StreamConfig(budget=200, seed=23), state_dir=tmp_path
    )
    session.ingest(events[:100])
    session.checkpoint()
    session.ingest(events[100:200])
    session.checkpoint()
    session.close()
    return tmp_path / "gen"


class TestCheckpointFallback:
    def test_corrupt_latest_shard_falls_back_one_generation(
        self, events, tmp_path
    ):
        directory = _checkpointed_state_dir(events, tmp_path)
        shard = directory / "shard-0000-g000002.ckpt"
        mangled = bytearray(shard.read_bytes())
        mangled[len(mangled) // 2] ^= 0x04
        shard.write_bytes(bytes(mangled))
        with pytest.warns(CorruptStateWarning, match="quarantined"):
            restored = StreamSession.restore("gen", tmp_path)
        assert restored.clock == 100  # generation 1 survives
        names = {p.name for p in (directory / "quarantine").iterdir()}
        assert "shard-0000-g000002.ckpt" in names
        restored.close()

    def test_zero_length_shard_falls_back(self, events, tmp_path):
        directory = _checkpointed_state_dir(events, tmp_path)
        (directory / "shard-0000-g000002.ckpt").write_bytes(b"")
        with pytest.warns(CorruptStateWarning):
            restored = StreamSession.restore("gen", tmp_path)
        assert restored.clock == 100
        restored.close()

    def test_corrupt_manifest_pointer_falls_back_to_generation_copy(
        self, events, tmp_path
    ):
        directory = _checkpointed_state_dir(events, tmp_path)
        (directory / "manifest.json").write_text("{ not json", "utf-8")
        with pytest.warns(CorruptStateWarning):
            restored = StreamSession.restore("gen", tmp_path)
        # manifest-g000002.json carries the same commit: nothing lost.
        assert restored.clock == 200
        restored.close()

    def test_every_generation_corrupt_raises(self, events, tmp_path):
        directory = _checkpointed_state_dir(events, tmp_path)
        (directory / "shard-0000-g000002.ckpt").write_bytes(b"junk")
        (directory / "shard-0000-g000001.ckpt").write_bytes(b"junk")
        with pytest.warns(CorruptStateWarning):
            with pytest.raises(ServiceError, match="validates"):
                StreamSession.restore("gen", tmp_path)

    def test_recovery_continues_after_fallback(self, events, tmp_path):
        directory = _checkpointed_state_dir(events, tmp_path)
        (directory / "shard-0000-g000002.ckpt").write_bytes(b"")
        with pytest.warns(CorruptStateWarning):
            restored = StreamSession.restore("gen", tmp_path)
        restored.ingest(events[100:260])
        restored.checkpoint()
        restored.close()
        reborn = StreamSession.restore("gen", tmp_path)
        assert reborn.clock == 260
        reborn.close()

    def test_service_boot_survives_a_corrupt_tenant_checkpoint(
        self, events, tmp_path
    ):
        _checkpointed_state_dir(events, tmp_path)
        shard = tmp_path / "gen" / "shard-0000-g000002.ckpt"
        shard.write_bytes(b"\x00" * 10)
        with pytest.warns(CorruptStateWarning):
            service = CountingService(
                ServiceConfig(state_dir=tmp_path, checkpoint_interval=None)
            )
        assert service.streams() == ("gen",)
        assert service.get_stream("gen").clock == 100
        service.stop()


def _raw_hello(version: int, role: str = "client") -> bytes:
    payload = hello_payload(role)
    return _FRAME_HEADER.pack(
        _FRAME_MAGIC, version, FRAME_HELLO, len(payload)
    ) + payload


def _exchange(address: str, blob: bytes) -> list[tuple[int, bytes]]:
    """Send raw bytes, half-close, drain every reply frame."""
    host, port = parse_address(address)
    deadline = time.monotonic() + 10.0
    replies = []
    with socket.create_connection((host, port), timeout=10.0) as sock:
        sock.sendall(blob)
        sock.shutdown(socket.SHUT_WR)
        while True:
            try:
                frame = read_frame(sock, deadline=deadline)
            except Exception:
                break
            if frame is None:
                break
            replies.append(frame)
    return replies


def _error_text(replies) -> str:
    for kind, payload in replies:
        if kind != FRAME_CONTROL:
            continue
        reply = decode(payload)
        if reply[0] == "error":
            return reply[2]
    raise AssertionError(f"no error reply in {replies!r}")


class TestWireRejection:
    @pytest.fixture()
    def service(self):
        service = CountingService(ServiceConfig(checkpoint_interval=None))
        service.start()
        yield service
        service.stop()

    @pytest.fixture()
    def host_agent(self):
        agent = HostAgent()
        thread = threading.Thread(target=agent.serve_forever, daemon=True)
        thread.start()
        yield agent
        agent.shutdown()
        thread.join(timeout=5)

    def test_service_rejects_cross_version_hello(self, service):
        replies = _exchange(service.address, _raw_hello(PROTOCOL_VERSION - 1))
        text = _error_text(replies)
        assert "protocol version" in text
        assert str(PROTOCOL_VERSION) in text
        # and the front still serves current-version peers afterwards
        replies = _exchange(
            service.address,
            frame_bytes(FRAME_HELLO, hello_payload("client")),
        )
        assert replies and replies[0][0] == FRAME_HELLO
        meta = json.loads(replies[0][1].decode("utf-8"))
        assert meta["protocol"] == PROTOCOL_VERSION

    def test_host_rejects_cross_version_hello(self, host_agent):
        replies = _exchange(
            host_agent.address, _raw_hello(99, "coordinator")
        )
        assert "protocol version" in _error_text(replies)

    def test_host_rejects_unknown_weight_spec(self, host_agent):
        from repro.samplers.checkpoint import state_to_wire
        from repro.streams.fuzz import _fresh_state

        blob = frame_bytes(
            FRAME_HELLO, hello_payload("coordinator")
        ) + frame_bytes(
            FRAME_CONTROL,
            encode(
                (
                    "lease",
                    0,
                    state_to_wire(_fresh_state(5)),
                    ("no-such-weights", {}),
                )
            ),
        )
        text = _error_text(_exchange(host_agent.address, blob))
        assert "no-such-weights" in text
        assert "registers" in text

    def test_unregistered_weight_fn_has_no_wire_spec(self):
        from repro.errors import ConfigurationError
        from repro.weights.registry import weight_spec_for

        with pytest.raises(ConfigurationError, match="register"):
            weight_spec_for(lambda u, v: 1.0)

    def test_service_caps_error_traceback_size(self, service):
        # A control op that fails server-side ships a traceback capped
        # at the clip limit, no matter what blew up.
        from repro.utils.text import TRACEBACK_LIMIT

        blob = frame_bytes(
            FRAME_HELLO, hello_payload("client")
        ) + frame_bytes(
            FRAME_CONTROL, encode(("attach", 1, "x" * 200))
        )
        text = _error_text(_exchange(service.address, blob))
        assert len(text) <= TRACEBACK_LIMIT + 100


class TestFrameCapOption:
    def test_service_config_rejects_tiny_caps(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="max_frame_bytes"):
            ServiceConfig(max_frame_bytes=100).validate()
        ServiceConfig(max_frame_bytes=1 << 20).validate()

    def test_lowered_cap_refuses_oversized_frames_with_typed_error(self):
        service = CountingService(
            ServiceConfig(
                checkpoint_interval=None, max_frame_bytes=1 << 20
            )
        )
        service.start()
        try:
            big = encode(("attach", 1, "x"))
            header = _FRAME_HEADER.pack(
                _FRAME_MAGIC, PROTOCOL_VERSION, FRAME_CONTROL, 1 << 21
            )
            blob = (
                frame_bytes(FRAME_HELLO, hello_payload("client"))
                + header
                + big
            )
            text = _error_text(_exchange(service.address, blob))
            assert "frame cap" in text
        finally:
            service.stop()
