"""WSD-L serving parity: context path == block path == batched.

Three trajectory-level contracts for the learned weight on the fast
path:

1. the legacy context path (``block_serving=False``) and the block path
   draw the *same sampling trajectory* under a fixed seed — identical
   reservoirs, weights, and thresholds; the estimates agree up to the
   estimator's float regrouping (well under the 1e-6 tripwire);
2. per-event and batched ingestion of a block-served WSD-L sampler are
   bit-identical (same contract every other weight function has);
3. a v4 checkpoint embeds the frozen actor and the arrival-time
   aggregates, restores *without* the caller re-supplying the weight
   function, and continues bit-identically — including through the
   process-backend sharded executor.
"""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graph.stream import EdgeEvent, EventBlock
from repro.rl.policy import FrozenPolicy, Policy
from repro.samplers.checkpoint import restore_sampler, sampler_state_dict
from repro.samplers.gps import GPS
from repro.samplers.gps_a import GPSA
from repro.samplers.wsd import WSD
from repro.streams.executor import ShardedStreamExecutor
from repro.utils.rng import spawn_generators
from repro.weights.features import state_dimension
from repro.weights.learned import LearnedWeight

PATTERN_EDGES = {"wedge": 2, "triangle": 3, "4-clique": 6}


def dynamic_stream(num_events=800, num_vertices=40, deletion_fraction=0.3,
                   seed=0):
    rng = np.random.default_rng(seed)
    alive = []
    events = []
    while len(events) < num_events:
        if alive and rng.random() < deletion_fraction:
            i = int(rng.integers(len(alive)))
            events.append(EdgeEvent.deletion(*alive.pop(i)))
        else:
            u = int(rng.integers(num_vertices))
            v = int(rng.integers(num_vertices))
            if u == v:
                continue
            edge = (u, v) if u < v else (v, u)
            if edge in alive:
                continue
            alive.append(edge)
            events.append(EdgeEvent.insertion(*edge))
    return events


def learned_weight(pattern, agg="max", block_serving=None):
    dim = state_dimension(PATTERN_EDGES[pattern])
    policy = FrozenPolicy(np.linspace(0.05, 0.45, dim), 0.1)
    return LearnedWeight(
        policy, temporal_aggregation=agg, block_serving=block_serving
    )


def make_sampler(pattern, agg="max", block_serving=None, cls=WSD, seed=7,
                 arena_cutoff=None):
    sampler = cls(
        pattern, 40, learned_weight(pattern, agg, block_serving),
        rng=np.random.default_rng(seed),
    )
    if arena_cutoff is not None:
        graph = sampler._sampled_graph
        graph.enable_arena(
            graph._payload_fn, cutoff=arena_cutoff,
            payload2_fn=graph._payload2_fn,
        )
    return sampler


def trajectory_of(sampler):
    return (
        dict(sampler._reservoir.items()),
        dict(sampler._edge_weights),
        sampler.threshold,
        sampler.time,
    )


class TestServingParity:
    @pytest.mark.parametrize("agg", ["max", "avg"])
    @pytest.mark.parametrize("pattern", sorted(PATTERN_EDGES))
    def test_context_and_block_paths_draw_same_trajectory(
        self, pattern, agg
    ):
        events = dynamic_stream(seed=11)
        ctx = make_sampler(pattern, agg, block_serving=False)
        blk = make_sampler(pattern, agg, block_serving=True)
        for event in events:
            ctx.process(event)
            blk.process(event)
        assert trajectory_of(ctx) == trajectory_of(blk)
        # Identical trajectory, so the estimates differ only by the
        # float grouping of the estimator walks. The A/B tripwire
        # budget is 1e-6 relative; measured residue is ~1e-12.
        denom = max(abs(ctx.estimate), 1.0)
        assert abs(ctx.estimate - blk.estimate) / denom <= 1e-6

    @pytest.mark.parametrize("agg", ["max", "avg"])
    @pytest.mark.parametrize("pattern", sorted(PATTERN_EDGES))
    def test_per_event_equals_batched(self, pattern, agg):
        events = dynamic_stream(seed=13)
        per_event = make_sampler(pattern, agg)
        batched = make_sampler(pattern, agg)
        for event in events:
            per_event.process(event)
        batched.process_batch(EventBlock.from_events(events))
        assert trajectory_of(per_event) == trajectory_of(batched)
        assert per_event.estimate == batched.estimate

    @pytest.mark.parametrize("cls", [GPS, GPSA])
    def test_kernel_variants_per_event_equals_batched(self, cls):
        # GPS is insertion-only; widen the vertex pool so 800 distinct
        # insertions exist (40 vertices only have 780 pairs).
        frac = 0.0 if cls is GPS else 0.3
        events = dynamic_stream(
            deletion_fraction=frac, num_vertices=60, seed=17
        )
        per_event = make_sampler("wedge", cls=cls)
        batched = make_sampler("wedge", cls=cls)
        for event in events:
            per_event.process(event)
        batched.process_batch(EventBlock.from_events(events))
        assert trajectory_of(per_event) == trajectory_of(batched)
        assert per_event.estimate == batched.estimate

    def test_arena_slab_path_matches_scalar(self):
        """Forcing lane-2 slabs must not change the trajectory."""
        events = dynamic_stream(num_vertices=30, seed=19)
        scalar = make_sampler("triangle")
        slabbed = make_sampler("triangle", arena_cutoff=4)
        for event in events:
            scalar.process(event)
            slabbed.process(event)
        assert list(slabbed._sampled_graph.slabbed_vertices())
        assert trajectory_of(scalar)[:2] == trajectory_of(slabbed)[:2]


class TestLearnedCheckpoint:
    @pytest.mark.parametrize(
        "pattern,cls,cutoff",
        [
            ("triangle", WSD, None),
            ("triangle", WSD, 4),
            ("wedge", WSD, None),
            ("wedge", GPSA, None),
            ("4-clique", WSD, None),
        ],
    )
    def test_v4_restores_without_weight_fn(self, pattern, cls, cutoff):
        events = dynamic_stream(seed=23)
        half = len(events) // 2
        full = make_sampler(pattern, cls=cls, arena_cutoff=cutoff)
        for event in events:
            full.process(event)
        first = make_sampler(pattern, cls=cls, arena_cutoff=cutoff)
        for event in events[:half]:
            first.process(event)
        state = json.loads(json.dumps(sampler_state_dict(first)))
        assert state["format"] == 4
        assert "learned_weight" in state
        if pattern == "wedge":
            assert "arrival_tracker" in state
        restored = restore_sampler(state)
        assert isinstance(restored.weight_fn, LearnedWeight)
        assert restored.weight_fn.block_serving
        for event in events[half:]:
            restored.process(event)
        assert trajectory_of(full) == trajectory_of(restored)
        assert full.estimate == restored.estimate

    def test_batched_continuation_after_restore(self):
        events = dynamic_stream(seed=29)
        half = len(events) // 2
        full = make_sampler("wedge")
        full.process_batch(events)
        first = make_sampler("wedge")
        first.process_batch(events[:half])
        restored = restore_sampler(sampler_state_dict(first))
        restored.process_batch(events[half:])
        assert trajectory_of(full) == trajectory_of(restored)
        assert full.estimate == restored.estimate

    def test_explicit_weight_fn_wins(self):
        events = dynamic_stream(num_events=300, seed=31)
        sampler = make_sampler("wedge")
        for event in events:
            sampler.process(event)
        replacement = learned_weight("wedge", agg="avg")
        restored = restore_sampler(sampler_state_dict(sampler), replacement)
        assert restored.weight_fn is replacement

    def test_unfrozen_policy_round_trips_as_policy(self):
        dim = state_dimension(2)
        lw = LearnedWeight(Policy(np.linspace(0.05, 0.45, dim), 0.1))
        assert not lw.block_serving  # plain Policy → context path
        sampler = WSD("wedge", 40, lw, rng=np.random.default_rng(7))
        for event in dynamic_stream(num_events=300, seed=37):
            sampler.process(event)
        state = sampler_state_dict(sampler)
        assert state["learned_weight"]["frozen"] is False
        restored = restore_sampler(state)
        assert type(restored.weight_fn.policy) is Policy
        assert not restored.weight_fn.block_serving

    def test_foreign_policy_still_requires_weight_fn(self):
        class Constant:
            def action(self, state):
                return 2.0

        sampler = WSD(
            "wedge", 40, LearnedWeight(Constant()),
            rng=np.random.default_rng(7),
        )
        for event in dynamic_stream(num_events=200, seed=41):
            sampler.process(event)
        state = sampler_state_dict(sampler)
        assert "learned_weight" not in state
        with pytest.raises(ConfigurationError):
            restore_sampler(state)


class TestLearnedExecutor:
    @staticmethod
    def factory(pattern="wedge"):
        rngs = spawn_generators(123, 8)

        def make(i):
            return WSD(
                pattern, 40, learned_weight(pattern), rng=rngs[i]
            )

        return make

    def test_process_backend_matches_serial(self):
        """WSD-L shards survive the pickle → worker → checkpoint loop."""
        events = dynamic_stream(num_events=600, seed=43)
        serial = ShardedStreamExecutor(
            self.factory(), 2, executor_backend="serial"
        )
        process = ShardedStreamExecutor(
            self.factory(), 2, executor_backend="process"
        )
        serial.process_batch(events)
        with process:
            process.process_batch(events)
            estimate = process.estimate
            shard_estimates = process.shard_estimates()
        assert estimate == serial.estimate
        assert shard_estimates == serial.shard_estimates()

    def test_shard_restart_continues_bit_identically(self):
        """Crash-restart from the v4 snapshot: the restarted shard's
        replica is rebuilt from the checkpointed actor, not the pickled
        weight function."""
        events = dynamic_stream(num_events=600, seed=47)
        half = len(events) // 2
        reference = ShardedStreamExecutor(self.factory(), 2)
        reference.process_batch(events)
        executor = ShardedStreamExecutor(self.factory(), 2)
        executor.process_batch(events[:half])
        snapshot = executor.snapshot()
        for index, state in enumerate(snapshot):
            state = json.loads(json.dumps(state))
            executor.shards[index] = restore_sampler(state)
        executor.process_batch(events[half:])
        assert executor.estimate == reference.estimate
