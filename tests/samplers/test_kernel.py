"""Tests for the composable sampler kernel layer.

The architecture contract: every sampler instantiates one of the two
kernels, routes its insertion/deletion/estimation through the shared
machinery, and inherits the kernel's batched fast paths — the
per-sampler modules contribute only reservoir policy.
"""

import pytest

from repro.errors import SamplerError
from repro.graph.stream import EdgeEvent
from repro.samplers import (
    GPS,
    GPSA,
    WRS,
    PairingSamplerKernel,
    ThinkD,
    ThinkDFast,
    ThresholdSamplerKernel,
    Triest,
    WSD,
)
from repro.samplers.base import SubgraphCountingSampler
from repro.weights.heuristic import GPSHeuristicWeight, UniformWeight

from tests.samplers.test_fastpath import dynamic_stream


def make_all(pattern="triangle", budget=40, rng=0):
    return {
        "wsd": WSD(pattern, budget, GPSHeuristicWeight(), rng=rng),
        "gps": GPS(pattern, budget, GPSHeuristicWeight(), rng=rng),
        "gps-a": GPSA(pattern, budget, GPSHeuristicWeight(), rng=rng),
        "thinkd": ThinkD(pattern, budget, rng=rng),
        "triest": Triest(pattern, budget, rng=rng),
        "wrs": WRS(pattern, budget, rng=rng),
        "thinkd-fast": ThinkDFast(pattern, 0.4, rng=rng),
    }


class TestArchitecture:
    def test_threshold_samplers_share_the_kernel(self):
        samplers = make_all()
        for name in ("wsd", "gps", "gps-a"):
            assert isinstance(samplers[name], ThresholdSamplerKernel)

    def test_pairing_samplers_share_the_kernel(self):
        samplers = make_all()
        for name in ("thinkd", "triest", "wrs"):
            assert isinstance(samplers[name], PairingSamplerKernel)
            assert samplers[name]._rp is not None

    def test_every_sampler_is_a_subgraph_counting_sampler(self):
        for sampler in make_all().values():
            assert isinstance(sampler, SubgraphCountingSampler)

    def test_kernel_insert_is_abstract(self):
        class HalfPolicy(ThresholdSamplerKernel):
            def _process_deletion(self, edge):  # pragma: no cover
                pass

        kernel = HalfPolicy("triangle", 10, UniformWeight(), rng=0)
        with pytest.raises(NotImplementedError):
            kernel.process(EdgeEvent.insertion(1, 2))

    def test_wsd_threshold_aliases(self):
        sampler = WSD("triangle", 10, UniformWeight(), rng=0)
        for event in dynamic_stream(200, num_vertices=15, seed=2):
            sampler.process(event)
        assert sampler.tau_q == sampler.threshold
        assert sampler.tau_q_generation == sampler.threshold_generation


class TestThresholdGenerations:
    """The generation counter bumps exactly on threshold changes — the
    memo-invalidation contract, now shared by all threshold kernels."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: GPS("triangle", 20, GPSHeuristicWeight(), rng=1),
            lambda: GPSA("triangle", 20, GPSHeuristicWeight(), rng=1),
        ],
        ids=["gps", "gps-a"],
    )
    def test_generation_tracks_threshold_changes(self, factory):
        sampler = factory()
        deletions = 0.0 if isinstance(sampler, GPS) else 0.3
        threshold = sampler.threshold
        generation = sampler.threshold_generation
        assert generation == 0
        for event in dynamic_stream(
            400, num_vertices=40, deletion_fraction=deletions, seed=3
        ):
            sampler.process(event)
            if sampler.threshold != threshold:
                assert sampler.threshold_generation == generation + 1
                threshold = sampler.threshold
                generation = sampler.threshold_generation
            else:
                assert sampler.threshold_generation == generation

    def test_memo_consistent_after_invalidation(self):
        sampler = GPS("triangle", 15, GPSHeuristicWeight(), rng=5)
        for event in dynamic_stream(
            300, num_vertices=40, deletion_fraction=0.0, seed=6
        ):
            sampler.process(event)
        for edge in sampler.sampled_edges():
            expected = sampler.rank_fn.inclusion_probability(
                sampler.sampled_weight(edge), sampler.threshold
            )
            assert sampler.inclusion_probability(edge) == expected


class TestSharedBehaviour:
    def test_gps_rejects_deletions_in_batch(self):
        sampler = GPS("triangle", 20, GPSHeuristicWeight(), rng=0)
        events = [
            EdgeEvent.insertion(1, 2),
            EdgeEvent.insertion(2, 3),
            EdgeEvent.deletion(1, 2),
        ]
        with pytest.raises(SamplerError):
            sampler.process_batch(events)
        # The failing event was still clocked, like per-event processing.
        assert sampler.time == 3

    def test_capture_context_now_available_on_gps_family(self):
        events = dynamic_stream(200, deletion_fraction=0.0, seed=7)
        sampler = GPSA(
            "triangle", 30, GPSHeuristicWeight(), rng=2, capture_context=True
        )
        for event in events:
            sampler.process(event)
        assert sampler.last_context is not None
        assert sampler.last_weight is not None

    def test_base_batch_default_matches_process(self):
        """The reworked base-class batched driver (used by WRS and any
        custom sampler) stays bit-identical to per-event processing."""
        events = dynamic_stream(400, seed=8)
        one = WRS("triangle", 50, rng=3)
        two = WRS("triangle", 50, rng=3)
        for event in events:
            one.process(event)
        two.process_batch(events)
        assert one.estimate == two.estimate
        assert one.time == two.time
        assert sorted(map(repr, one.sampled_edges())) == sorted(
            map(repr, two.sampled_edges())
        )
