"""Tests for ThinkD-FAST (Bernoulli variant)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graph.generators import powerlaw_cluster
from repro.graph.stream import EdgeEvent
from repro.patterns.exact import ExactCounter
from repro.samplers.thinkd_fast import ThinkDFast
from repro.streams.scenarios import light_deletion_stream


@pytest.fixture(scope="module")
def workload():
    edges = powerlaw_cluster(100, m=4, triangle_probability=0.7, rng=0)
    stream = light_deletion_stream(edges, beta_l=0.25, rng=1)
    truth = ExactCounter("triangle").process_stream(stream)
    return stream, truth


class TestThinkDFast:
    def test_probability_validated(self):
        with pytest.raises(ConfigurationError):
            ThinkDFast("triangle", 0.0)
        with pytest.raises(ConfigurationError):
            ThinkDFast("triangle", 1.5)

    def test_p_one_is_exact(self, workload):
        stream, truth = workload
        est = ThinkDFast("triangle", 1.0, rng=0).process_stream(stream)
        assert est == pytest.approx(truth)

    def test_sample_size_binomial(self, workload):
        stream, _ = workload
        p = 0.3
        sizes = []
        alive = stream.final_edge_count()
        for seed in range(60):
            sampler = ThinkDFast("triangle", p, rng=seed)
            sampler.process_stream(stream)
            sizes.append(sampler.sample_size)
        assert abs(np.mean(sizes) - p * alive) < 0.12 * p * alive + 3

    def test_unbiased(self, workload):
        stream, truth = workload
        estimates = [
            ThinkDFast("triangle", 0.4, rng=s).process_stream(stream)
            for s in range(400)
        ]
        mean = float(np.mean(estimates))
        stderr = float(np.std(estimates) / np.sqrt(len(estimates)))
        assert abs(mean - truth) < max(4 * stderr, 0.06 * truth)

    def test_deletion_removes_sampled_edge(self):
        sampler = ThinkDFast("triangle", 1.0, rng=0)
        sampler.process(EdgeEvent.insertion(1, 2))
        assert sampler.sample_size == 1
        sampler.process(EdgeEvent.deletion(1, 2))
        assert sampler.sample_size == 0

    def test_estimate_returns_to_zero(self):
        sampler = ThinkDFast("triangle", 1.0, rng=0)
        events = [
            EdgeEvent.insertion(1, 2),
            EdgeEvent.insertion(2, 3),
            EdgeEvent.insertion(1, 3),
        ]
        for event in events:
            sampler.process(event)
        for event in reversed(events):
            sampler.process(EdgeEvent.deletion(*event.edge))
        assert sampler.estimate == pytest.approx(0.0)

    def test_instance_observer_sees_contributions(self, workload):
        stream, _ = workload
        sampler = ThinkDFast("triangle", 0.5, rng=3)
        seen = []
        sampler.instance_observers.append(
            lambda trigger, instance, value: seen.append(value)
        )
        sampler.process_stream(stream)
        assert seen
        assert sum(seen) == pytest.approx(sampler.estimate)
