"""Tests for the uniform baselines: Triest-FD, ThinkD, WRS."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graph.generators import forest_fire, powerlaw_cluster
from repro.graph.stream import EdgeEvent
from repro.patterns.exact import ExactCounter
from repro.samplers.thinkd import ThinkD
from repro.samplers.triest import Triest
from repro.samplers.wrs import WRS
from repro.streams.scenarios import light_deletion_stream, massive_deletion_stream


@pytest.fixture(scope="module")
def triangle_workload():
    edges = powerlaw_cluster(100, m=4, triangle_probability=0.7, rng=1)
    stream = light_deletion_stream(edges, beta_l=0.25, rng=2)
    truth = ExactCounter("triangle").process_stream(stream)
    assert truth > 0
    return stream, truth


def check_unbiased(make_sampler, stream, truth, runs=400, tolerance=0.06):
    estimates = [make_sampler(seed).process_stream(stream) for seed in range(runs)]
    mean = float(np.mean(estimates))
    stderr = float(np.std(estimates) / np.sqrt(runs))
    assert abs(mean - truth) < max(4 * stderr, tolerance * truth), (
        f"mean {mean} vs truth {truth} (stderr {stderr})"
    )


class TestTriest:
    def test_exact_when_budget_large(self, triangle_workload):
        stream, truth = triangle_workload
        est = Triest("triangle", 10_000, rng=0).process_stream(stream)
        assert est == pytest.approx(truth)

    def test_tau_counts_sample_triangles(self):
        sampler = Triest("triangle", 100, rng=0)
        for u, v in [(1, 2), (2, 3), (1, 3)]:
            sampler.process(EdgeEvent.insertion(u, v))
        assert sampler.tau == 1

    def test_tau_decrements_on_deletion(self):
        sampler = Triest("triangle", 100, rng=0)
        for u, v in [(1, 2), (2, 3), (1, 3)]:
            sampler.process(EdgeEvent.insertion(u, v))
        sampler.process(EdgeEvent.deletion(2, 3))
        assert sampler.tau == 0

    def test_estimate_zero_on_empty(self):
        assert Triest("triangle", 10, rng=0).estimate == 0.0

    def test_unbiased(self, triangle_workload):
        stream, truth = triangle_workload
        check_unbiased(
            lambda s: Triest("triangle", 60, rng=s), stream, truth,
            tolerance=0.12,
        )

    def test_budget_respected(self, triangle_workload):
        stream, _ = triangle_workload
        sampler = Triest("triangle", 9, rng=3)
        for event in stream:
            sampler.process(event)
            assert sampler.sample_size <= 9

    def test_sampled_graph_tracks_sample(self, triangle_workload):
        stream, _ = triangle_workload
        sampler = Triest("triangle", 15, rng=4)
        for event in stream:
            sampler.process(event)
            assert set(sampler.sampled_edges()) == set(
                sampler.sampled_graph.edges()
            )


class TestThinkD:
    def test_exact_when_budget_large(self, triangle_workload):
        stream, truth = triangle_workload
        est = ThinkD("triangle", 10_000, rng=0).process_stream(stream)
        assert est == pytest.approx(truth)

    def test_unbiased(self, triangle_workload):
        stream, truth = triangle_workload
        check_unbiased(lambda s: ThinkD("triangle", 60, rng=s), stream, truth)

    def test_unbiased_massive(self):
        edges = powerlaw_cluster(100, m=4, triangle_probability=0.7, rng=5)
        stream = massive_deletion_stream(edges, alpha=0.02, beta_m=0.5, rng=6)
        truth = ExactCounter("triangle").process_stream(stream)
        assert truth > 0
        check_unbiased(
            lambda s: ThinkD("triangle", 80, rng=s), stream, truth,
            tolerance=0.1,
        )

    def test_wedge_pattern(self):
        edges = forest_fire(80, p=0.45, rng=7)
        stream = light_deletion_stream(edges, beta_l=0.2, rng=8)
        truth = ExactCounter("wedge").process_stream(stream)
        check_unbiased(
            lambda s: ThinkD("wedge", 50, rng=s), stream, truth,
            runs=300,
        )

    def test_budget_respected(self, triangle_workload):
        stream, _ = triangle_workload
        sampler = ThinkD("triangle", 9, rng=9)
        for event in stream:
            sampler.process(event)
            assert sampler.sample_size <= 9

    def test_lower_variance_than_triest(self, triangle_workload):
        """ThinkD's 'update before discard' reduces variance vs Triest
        (its headline claim), reproduced statistically."""
        stream, truth = triangle_workload
        triest = [
            Triest("triangle", 50, rng=s).process_stream(stream)
            for s in range(200)
        ]
        thinkd = [
            ThinkD("triangle", 50, rng=s).process_stream(stream)
            for s in range(200)
        ]
        assert np.std(thinkd) < np.std(triest)


class TestWRS:
    def test_waiting_room_fraction_validated(self):
        with pytest.raises(ConfigurationError):
            WRS("triangle", 20, waiting_room_fraction=0.0)
        with pytest.raises(ConfigurationError):
            WRS("triangle", 20, waiting_room_fraction=1.0)

    def test_recent_edges_always_sampled(self):
        sampler = WRS("triangle", 20, waiting_room_fraction=0.25, rng=0)
        for i in range(100):
            sampler.process(EdgeEvent.insertion(i, i + 1000))
        sampled = set(sampler.sampled_edges())
        # The waiting room holds the most recent ⌈0.25*20⌉ = 5 edges.
        for i in range(95, 100):
            assert (i, i + 1000) in sampled

    def test_exact_when_budget_large(self, triangle_workload):
        stream, truth = triangle_workload
        est = WRS("triangle", 10_000, rng=0).process_stream(stream)
        assert est == pytest.approx(truth)

    def test_unbiased(self, triangle_workload):
        stream, truth = triangle_workload
        check_unbiased(lambda s: WRS("triangle", 60, rng=s), stream, truth)

    def test_deletion_from_waiting_room(self):
        sampler = WRS("triangle", 20, waiting_room_fraction=0.5, rng=0)
        sampler.process(EdgeEvent.insertion(1, 2))
        assert sampler.waiting_room_size == 1
        sampler.process(EdgeEvent.deletion(1, 2))
        assert sampler.waiting_room_size == 0
        assert sampler.sample_size == 0

    def test_budget_respected(self, triangle_workload):
        stream, _ = triangle_workload
        sampler = WRS("triangle", 10, rng=1)
        for event in stream:
            sampler.process(event)
            assert sampler.sample_size <= 10

    def test_sampled_graph_consistent(self, triangle_workload):
        stream, _ = triangle_workload
        sampler = WRS("triangle", 12, rng=2)
        for event in stream:
            sampler.process(event)
            assert set(sampler.sampled_edges()) == set(
                sampler.sampled_graph.edges()
            )

    def test_temporal_locality_advantage(self):
        """On a strongly local stream WRS should beat Triest on mean
        absolute error — the WRS paper's core claim."""
        edges = powerlaw_cluster(150, m=5, triangle_probability=0.85, rng=10)
        stream = light_deletion_stream(edges, beta_l=0.2, rng=11)
        truth = ExactCounter("triangle").process_stream(stream)
        wrs_err = np.mean(
            [
                abs(WRS("triangle", 60, rng=s).process_stream(stream) - truth)
                for s in range(120)
            ]
        )
        triest_err = np.mean(
            [
                abs(
                    Triest("triangle", 60, rng=s).process_stream(stream)
                    - truth
                )
                for s in range(120)
            ]
        )
        assert wrs_err < triest_err
