"""Tests for the shared sampler base class behaviour."""

import pytest

from repro.errors import ConfigurationError
from repro.graph.stream import EdgeEvent
from repro.samplers.thinkd import ThinkD
from repro.samplers.wsd import WSD
from repro.weights.heuristic import UniformWeight


class TestBaseBehaviour:
    def test_time_advances_per_event(self):
        sampler = ThinkD("triangle", 10, rng=0)
        assert sampler.time == 0
        sampler.process(EdgeEvent.insertion(1, 2))
        assert sampler.time == 1
        sampler.process(EdgeEvent.deletion(1, 2))
        assert sampler.time == 2

    def test_process_stream_accepts_generator(self):
        sampler = ThinkD("triangle", 10, rng=0)
        events = (EdgeEvent.insertion(i, i + 100) for i in range(5))
        sampler.process_stream(events)
        assert sampler.time == 5

    def test_process_stream_returns_property_estimate(self):
        # Regression test: Triest overrides `estimate` as a property;
        # process_stream must honour the override (not _estimate).
        from repro.samplers.triest import Triest

        sampler = Triest("triangle", 100, rng=0)
        result = sampler.process_stream(
            [
                EdgeEvent.insertion(1, 2),
                EdgeEvent.insertion(2, 3),
                EdgeEvent.insertion(1, 3),
            ]
        )
        assert result == sampler.estimate == pytest.approx(3.0 / 3.0 * 1)

    def test_budget_validation_message_mentions_pattern(self):
        with pytest.raises(ConfigurationError, match="M >= |H|"):
            WSD("4-clique", 5, UniformWeight())

    def test_repr_contains_key_fields(self):
        sampler = WSD("triangle", 10, UniformWeight(), rng=0)
        text = repr(sampler)
        assert "triangle" in text
        assert "M=10" in text

    def test_observers_list_starts_empty(self):
        sampler = ThinkD("triangle", 10, rng=0)
        assert sampler.instance_observers == []

    def test_multiple_observers_all_called(self):
        sampler = WSD("triangle", 10, UniformWeight(), rng=0)
        calls = {"a": 0, "b": 0}
        sampler.instance_observers.append(
            lambda *args: calls.__setitem__("a", calls["a"] + 1)
        )
        sampler.instance_observers.append(
            lambda *args: calls.__setitem__("b", calls["b"] + 1)
        )
        for u, v in [(1, 2), (2, 3), (1, 3)]:
            sampler.process(EdgeEvent.insertion(u, v))
        assert calls["a"] == calls["b"] == 1
