"""Fast-path semantics: probability memoization and batched ingestion.

The hot-path engineering of this library promises two invariants:

1. the memoized inclusion probabilities are invalidated *exactly* when
   their threshold changes (τq for WSD — Case 2.1/2.2 transitions;
   r_{M+1} for GPS/GPS-A);
2. ``process_batch`` is bit-identical to event-at-a-time ``process``
   under a fixed seed, for insertions and deletions, across weight
   functions and patterns.
"""

import numpy as np
import pytest

from repro.graph.stream import EdgeEvent
from repro.samplers.gps import GPS
from repro.samplers.gps_a import GPSA
from repro.samplers.ranks import RankFunction
from repro.samplers.thinkd import ThinkD
from repro.samplers.thinkd_fast import ThinkDFast
from repro.samplers.triest import Triest
from repro.samplers.wrs import WRS
from repro.samplers.wsd import WSD
from repro.weights.heuristic import (
    DegreeWeight,
    GPSHeuristicWeight,
    UniformWeight,
)


class ScriptedRank(RankFunction):
    """Deterministic rank function driving Algorithm 1 case by case."""

    name = "scripted"

    def __init__(self, ranks):
        self._ranks = iter(ranks)

    def rank(self, weight, rng):
        return next(self._ranks)

    def inclusion_probability(self, weight, threshold):
        if threshold <= 0.0:
            return 1.0
        return min(1.0, weight / threshold)


def dynamic_stream(num_events=600, num_vertices=40, deletion_fraction=0.3,
                   seed=0):
    """Small synthetic fully dynamic stream with valid deletions."""
    rng = np.random.default_rng(seed)
    alive = []
    events = []
    while len(events) < num_events:
        if alive and rng.random() < deletion_fraction:
            i = int(rng.integers(len(alive)))
            edge = alive.pop(i)
            events.append(EdgeEvent.deletion(*edge))
        else:
            u = int(rng.integers(num_vertices))
            v = int(rng.integers(num_vertices))
            if u == v:
                continue
            edge = (u, v) if u < v else (v, u)
            if edge in alive:
                continue
            alive.append(edge)
            events.append(EdgeEvent.insertion(*edge))
    return events


class TestProbabilityCacheInvalidation:
    """The cache generation bumps exactly on τq changes (Case 2.1/2.2)."""

    def test_case1_retains_tau_q_and_cache(self):
        # Reservoir never fills: τq stays 0 and the generation never
        # bumps, no matter how many insertions arrive.
        sampler = WSD(
            "triangle", 50, UniformWeight(), rank_fn=ScriptedRank(
                [float(i + 1) for i in range(10)]
            ), rng=0,
        )
        for i in range(10):
            sampler.process(EdgeEvent.insertion(i, i + 100))
        assert sampler.tau_q == 0.0
        assert sampler.tau_q_generation == 0

    def test_case21_and_22_bump_generation(self):
        # Budget 3; ranks: fill with 5, 6, 7 (gen 0). Then:
        #  - rank 10 > τp=5  → Case 2.1: τq ← τp = 5 (gen 1)
        #  - rank 4  < τp=6, > τq=5 → Case 2.2: τq ← 4? no — 4 < 5 is
        #    Case 2.3: no change (gen stays 1)
        #  - rank 5.5 < τp=6, > τq=5 → Case 2.2: τq ← 5.5 (gen 2)
        sampler = WSD(
            "triangle", 3, UniformWeight(),
            rank_fn=ScriptedRank([5.0, 6.0, 7.0, 10.0, 4.0, 5.5]), rng=0,
        )
        for i in range(3):
            sampler.process(EdgeEvent.insertion(i, i + 100))
        assert sampler.tau_q_generation == 0

        sampler.process(EdgeEvent.insertion(50, 51))  # Case 2.1
        assert sampler.tau_q == pytest.approx(5.0)
        assert sampler.tau_q_generation == 1

        sampler.process(EdgeEvent.insertion(60, 61))  # Case 2.3
        assert sampler.tau_q == pytest.approx(5.0)
        assert sampler.tau_q_generation == 1

        sampler.process(EdgeEvent.insertion(70, 71))  # Case 2.2
        assert sampler.tau_q == pytest.approx(5.5)
        assert sampler.tau_q_generation == 2

    def test_case3_deletion_keeps_generation(self):
        sampler = WSD(
            "triangle", 3, UniformWeight(),
            rank_fn=ScriptedRank([5.0, 6.0, 7.0, 10.0]), rng=0,
        )
        for i in range(3):
            sampler.process(EdgeEvent.insertion(i, i + 100))
        sampler.process(EdgeEvent.insertion(50, 51))
        generation = sampler.tau_q_generation
        sampler.process(EdgeEvent.deletion(1, 101))
        assert sampler.tau_q_generation == generation

    def test_cached_values_match_rank_function(self):
        sampler = WSD("triangle", 10, GPSHeuristicWeight(), rng=3)
        for event in dynamic_stream(200, num_vertices=15, seed=4):
            sampler.process(event)
        for edge in sampler.sampled_edges():
            expected = sampler.rank_fn.inclusion_probability(
                sampler.sampled_weight(edge), sampler.tau_q
            )
            assert sampler.inclusion_probability(edge) == expected

    def test_cache_cleared_on_tau_q_change(self):
        sampler = WSD("triangle", 5, UniformWeight(), rng=7)
        generation = 0
        for event in dynamic_stream(400, num_vertices=12, seed=8):
            before = dict(sampler._prob_cache)
            sampler.process(event)
            if sampler.tau_q_generation != generation:
                # Invalidation happened: nothing stale may survive.
                generation = sampler.tau_q_generation
                for edge, p in sampler._prob_cache.items():
                    assert p == sampler.rank_fn.inclusion_probability(
                        sampler._edge_weights[edge], sampler.tau_q
                    )
            else:
                # No τq change: surviving entries are unchanged.
                for edge, p in before.items():
                    if edge in sampler._prob_cache:
                        assert sampler._prob_cache[edge] == p


def _pairwise_state(sampler):
    return (
        sampler.estimate,
        sampler.time,
        sampler.sample_size,
        sorted(map(repr, sampler.sampled_edges())),
    )


class TestBatchEquivalence:
    """process_batch must be bit-identical to event-at-a-time process."""

    @pytest.mark.parametrize("pattern", ["wedge", "triangle", "4-clique"])
    @pytest.mark.parametrize(
        "weight_factory",
        [GPSHeuristicWeight, UniformWeight, DegreeWeight],
    )
    def test_wsd_bit_identical(self, pattern, weight_factory):
        events = dynamic_stream(600, seed=11)
        one = WSD(pattern, 60, weight_factory(), rng=42)
        two = WSD(pattern, 60, weight_factory(), rng=42)
        for event in events:
            one.process(event)
        two.process_batch(events)
        assert _pairwise_state(one) == _pairwise_state(two)
        assert one.tau_p == two.tau_p
        assert one.tau_q == two.tau_q
        assert one.tau_q_generation == two.tau_q_generation

    def test_wsd_exponential_rank_bit_identical(self):
        events = dynamic_stream(400, seed=12)
        one = WSD("triangle", 50, UniformWeight(), rank_fn="exponential",
                  rng=5)
        two = WSD("triangle", 50, UniformWeight(), rank_fn="exponential",
                  rng=5)
        for event in events:
            one.process(event)
        two.process_batch(events)
        assert _pairwise_state(one) == _pairwise_state(two)

    def test_wsd_batch_boundaries_do_not_matter(self):
        events = dynamic_stream(500, seed=13)
        one = WSD("triangle", 40, GPSHeuristicWeight(), rng=9)
        two = WSD("triangle", 40, GPSHeuristicWeight(), rng=9)
        one.process_batch(events)
        for chunk_start in range(0, len(events), 37):
            two.process_batch(events[chunk_start:chunk_start + 37])
        assert _pairwise_state(one) == _pairwise_state(two)

    def test_wsd_mixed_process_and_batch(self):
        events = dynamic_stream(300, seed=14)
        one = WSD("triangle", 30, GPSHeuristicWeight(), rng=2)
        two = WSD("triangle", 30, GPSHeuristicWeight(), rng=2)
        for event in events:
            one.process(event)
        two.process_batch(events[:100])
        for event in events[100:200]:
            two.process(event)
        two.process_batch(events[200:])
        assert _pairwise_state(one) == _pairwise_state(two)

    def test_wsd_capture_context_path_same_estimate(self):
        events = dynamic_stream(400, seed=15)
        light = WSD("triangle", 40, GPSHeuristicWeight(), rng=6)
        heavy = WSD("triangle", 40, GPSHeuristicWeight(), rng=6,
                    capture_context=True)
        light.process_batch(events)
        heavy.process_batch(events)
        assert light.estimate == heavy.estimate
        assert light.last_context is None
        assert heavy.last_context is not None

    def test_wsd_observers_see_batch_contributions(self):
        events = dynamic_stream(400, seed=16)
        direct = WSD("triangle", 40, GPSHeuristicWeight(), rng=8)
        batched = WSD("triangle", 40, GPSHeuristicWeight(), rng=8)
        direct_log, batched_log = [], []
        direct.instance_observers.append(
            lambda trigger, inst, value: direct_log.append((trigger, value))
        )
        batched.instance_observers.append(
            lambda trigger, inst, value: batched_log.append((trigger, value))
        )
        for event in events:
            direct.process(event)
        batched.process_batch(events)
        assert direct_log == batched_log
        assert direct.estimate == batched.estimate

    @pytest.mark.parametrize("pattern", ["wedge", "triangle", "4-clique"])
    def test_gps_insertion_only_bit_identical(self, pattern):
        events = [e for e in dynamic_stream(400, deletion_fraction=0.0,
                                            seed=17)]
        one = GPS(pattern, 50, GPSHeuristicWeight(), rng=3)
        two = GPS(pattern, 50, GPSHeuristicWeight(), rng=3)
        for event in events:
            one.process(event)
        two.process_batch(events)
        assert _pairwise_state(one) == _pairwise_state(two)
        assert one.threshold == two.threshold
        assert one.threshold_generation == two.threshold_generation

    def test_gps_exponential_rank_bit_identical(self):
        events = [e for e in dynamic_stream(400, deletion_fraction=0.0,
                                            seed=20)]
        one = GPS("triangle", 50, UniformWeight(), rank_fn="exponential",
                  rng=6)
        two = GPS("triangle", 50, UniformWeight(), rank_fn="exponential",
                  rng=6)
        for event in events:
            one.process(event)
        two.process_batch(events)
        assert _pairwise_state(one) == _pairwise_state(two)

    @pytest.mark.parametrize("pattern", ["wedge", "triangle", "4-clique"])
    def test_gpsa_bit_identical(self, pattern):
        events = dynamic_stream(500, seed=18)
        one = GPSA(pattern, 50, GPSHeuristicWeight(), rng=4)
        two = GPSA(pattern, 50, GPSHeuristicWeight(), rng=4)
        for event in events:
            one.process(event)
        two.process_batch(events)
        assert _pairwise_state(one) == _pairwise_state(two)
        assert one.threshold == two.threshold
        assert one.num_tagged == two.num_tagged
        assert one.useful_sample_size == two.useful_sample_size

    @pytest.mark.parametrize("pattern", ["wedge", "triangle", "4-clique"])
    @pytest.mark.parametrize("sampler_cls", [ThinkD, Triest])
    def test_pairing_samplers_bit_identical(self, sampler_cls, pattern):
        events = dynamic_stream(500, seed=18)
        one = sampler_cls(pattern, 50, rng=4)
        two = sampler_cls(pattern, 50, rng=4)
        for event in events:
            one.process(event)
        two.process_batch(events)
        assert _pairwise_state(one) == _pairwise_state(two)

    @pytest.mark.parametrize("sampler_factory", [
        lambda: GPSA("triangle", 50, GPSHeuristicWeight(), rng=4),
        lambda: WRS("triangle", 50, rng=4),
        lambda: ThinkD("triangle", 50, rng=4),
        lambda: Triest("triangle", 50, rng=4),
        lambda: ThinkDFast("triangle", 0.4, rng=4),
    ])
    def test_dynamic_baselines_bit_identical(self, sampler_factory):
        events = dynamic_stream(500, seed=18)
        one = sampler_factory()
        two = sampler_factory()
        for event in events:
            one.process(event)
        two.process_batch(events)
        assert _pairwise_state(one) == _pairwise_state(two)

    @pytest.mark.parametrize("sampler_factory", [
        lambda: GPSA("triangle", 40, GPSHeuristicWeight(), rng=9),
        lambda: ThinkD("triangle", 40, rng=9),
        lambda: Triest("triangle", 40, rng=9),
        lambda: ThinkDFast("triangle", 0.4, rng=9),
    ])
    def test_batch_boundaries_do_not_matter(self, sampler_factory):
        events = dynamic_stream(500, seed=13)
        one = sampler_factory()
        two = sampler_factory()
        one.process_batch(events)
        for chunk_start in range(0, len(events), 37):
            two.process_batch(events[chunk_start:chunk_start + 37])
        assert _pairwise_state(one) == _pairwise_state(two)

    def test_thinkd_observer_fallback_same_estimate(self):
        events = dynamic_stream(300, seed=21)
        plain = ThinkD("triangle", 40, rng=5)
        observed = ThinkD("triangle", 40, rng=5)
        log = []
        observed.instance_observers.append(
            lambda trigger, inst, value: log.append(value)
        )
        plain.process_batch(events)
        observed.process_batch(events)
        # The observer path sums 1/p per instance while the count path
        # computes count/p — same value up to float associativity.
        assert plain.estimate == pytest.approx(observed.estimate, rel=1e-12)
        assert log  # the fallback path still emits

    @pytest.mark.parametrize("sampler_cls", [ThinkD, Triest])
    def test_batched_duplicate_insert_guard(self, sampler_cls):
        """The batched RP loops enforce the same duplicate-insertion
        guard as RandomPairingReservoir.insert — raised before any
        reservoir mutation, like the per-event path."""
        from repro.errors import ConfigurationError

        events = [
            EdgeEvent.insertion(1, 2),
            EdgeEvent.insertion(2, 3),
            EdgeEvent.insertion(1, 2),  # infeasible re-insertion
        ]
        sampler = sampler_cls("triangle", 10, rng=0)
        with pytest.raises(ConfigurationError):
            sampler.process_batch(events)
        rp = sampler._rp
        assert len(rp._items) == len(set(rp._items)) == 2
        assert rp.population == 2

    def test_process_stream_routes_through_batch(self):
        events = dynamic_stream(300, seed=19)
        one = WSD("triangle", 30, GPSHeuristicWeight(), rng=1)
        two = WSD("triangle", 30, GPSHeuristicWeight(), rng=1)
        for event in events:
            one.process(event)
        assert two.process_stream(events) == one.estimate
