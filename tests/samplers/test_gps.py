"""Tests for GPS (insertion-only) and GPS-A (lazy deletion tags)."""

import numpy as np
import pytest

from repro.errors import SamplerError
from repro.graph.generators import forest_fire, powerlaw_cluster
from repro.graph.stream import EdgeEvent, EdgeStream
from repro.patterns.exact import ExactCounter
from repro.samplers.gps import GPS
from repro.samplers.gps_a import GPSA
from repro.streams.scenarios import light_deletion_stream
from repro.weights.heuristic import GPSHeuristicWeight, UniformWeight


class TestGPS:
    def test_rejects_deletions(self):
        sampler = GPS("triangle", 10, UniformWeight(), rng=0)
        sampler.process(EdgeEvent.insertion(1, 2))
        with pytest.raises(SamplerError):
            sampler.process(EdgeEvent.deletion(1, 2))

    def test_threshold_zero_until_full(self):
        sampler = GPS("triangle", 10, UniformWeight(), rng=0)
        for i in range(10):
            sampler.process(EdgeEvent.insertion(i, i + 100))
        assert sampler.threshold == 0.0

    def test_threshold_positive_after_overflow(self):
        sampler = GPS("triangle", 5, UniformWeight(), rng=0)
        for i in range(10):
            sampler.process(EdgeEvent.insertion(i, i + 100))
        assert sampler.threshold > 0.0

    def test_threshold_monotone(self):
        sampler = GPS("triangle", 5, UniformWeight(), rng=0)
        last = 0.0
        for i in range(50):
            sampler.process(EdgeEvent.insertion(i, i + 100))
            assert sampler.threshold >= last
            last = sampler.threshold

    def test_reservoir_keeps_top_ranks(self):
        """Every sampled edge's rank must exceed the threshold r_{M+1}."""
        sampler = GPS("triangle", 5, UniformWeight(), rng=1)
        for i in range(50):
            sampler.process(EdgeEvent.insertion(i, i + 100))
        for edge in sampler.sampled_edges():
            assert sampler._reservoir.priority(edge) > sampler.threshold

    def test_unbiased_insertion_only(self):
        edges = powerlaw_cluster(100, m=4, triangle_probability=0.7, rng=2)
        stream = EdgeStream.from_edges(edges)
        truth = ExactCounter("triangle").process_stream(stream)
        estimates = [
            GPS("triangle", 60, GPSHeuristicWeight(), rng=s).process_stream(
                stream
            )
            for s in range(400)
        ]
        mean = float(np.mean(estimates))
        stderr = float(np.std(estimates) / np.sqrt(len(estimates)))
        assert abs(mean - truth) < max(4 * stderr, 0.05 * truth)

    def test_budget_respected(self):
        sampler = GPS("triangle", 7, UniformWeight(), rng=0)
        for i in range(100):
            sampler.process(EdgeEvent.insertion(i, i + 100))
            assert sampler.sample_size <= 7


class TestGPSA:
    def test_tag_keeps_slot_occupied(self):
        sampler = GPSA("triangle", 5, UniformWeight(), rng=0)
        for i in range(5):
            sampler.process(EdgeEvent.insertion(i, i + 100))
        sampler.process(EdgeEvent.deletion(0, 100))
        assert sampler.sample_size == 5       # ghost still occupies a slot
        assert sampler.useful_sample_size == 4
        assert sampler.num_tagged == 1

    def test_tagged_edge_not_in_sampled_graph(self):
        sampler = GPSA("triangle", 5, UniformWeight(), rng=0)
        sampler.process(EdgeEvent.insertion(1, 2))
        sampler.process(EdgeEvent.deletion(1, 2))
        assert (1, 2) not in sampler.sampled_graph
        assert (1, 2) not in set(sampler.sampled_edges())

    def test_reinsertion_of_tagged_edge(self):
        sampler = GPSA("triangle", 5, UniformWeight(), rng=0)
        sampler.process(EdgeEvent.insertion(1, 2))
        sampler.process(EdgeEvent.deletion(1, 2))
        sampler.process(EdgeEvent.insertion(1, 2))
        assert (1, 2) in set(sampler.sampled_edges())
        assert sampler.num_tagged == 0

    def test_deletion_of_unsampled_edge_noop_for_tags(self):
        sampler = GPSA("triangle", 3, UniformWeight(), rng=0)
        for i in range(30):
            sampler.process(EdgeEvent.insertion(i, i + 100))
        sampled = set(sampler.sampled_edges())
        victim = next(
            (i, i + 100) for i in range(30) if (i, i + 100) not in sampled
        )
        tagged_before = sampler.num_tagged
        sampler.process(EdgeEvent.deletion(*victim))
        assert sampler.num_tagged == tagged_before

    def test_unbiased_light_deletion(self):
        edges = powerlaw_cluster(100, m=4, triangle_probability=0.7, rng=4)
        stream = light_deletion_stream(edges, beta_l=0.25, rng=5)
        truth = ExactCounter("triangle").process_stream(stream)
        assert truth > 0
        estimates = [
            GPSA("triangle", 60, GPSHeuristicWeight(), rng=s).process_stream(
                stream
            )
            for s in range(400)
        ]
        mean = float(np.mean(estimates))
        stderr = float(np.std(estimates) / np.sqrt(len(estimates)))
        assert abs(mean - truth) < max(4 * stderr, 0.06 * truth)

    def test_budget_respected_with_tags(self):
        edges = forest_fire(120, p=0.4, rng=6)
        stream = light_deletion_stream(edges, beta_l=0.5, rng=7)
        sampler = GPSA("triangle", 9, UniformWeight(), rng=8)
        for event in stream:
            sampler.process(event)
            assert sampler.sample_size <= 9
            assert sampler.useful_sample_size <= sampler.sample_size

    def test_matches_gps_on_insertion_only(self):
        """With no deletions GPS-A and GPS make identical decisions given
        the same rank randomness."""
        edges = forest_fire(80, p=0.4, rng=9)
        stream = EdgeStream.from_edges(edges)
        gps = GPS("triangle", 20, GPSHeuristicWeight(), rng=11)
        gpsa = GPSA("triangle", 20, GPSHeuristicWeight(), rng=11)
        gps.process_stream(stream)
        gpsa.process_stream(stream)
        assert gps.estimate == pytest.approx(gpsa.estimate)
        assert set(gps.sampled_edges()) == set(gpsa.sampled_edges())
