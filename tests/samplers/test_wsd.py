"""Tests for WSD: Algorithm 1 case behaviour, Lemma 1, Theorem 4."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graph.generators import forest_fire, powerlaw_cluster
from repro.graph.stream import EdgeEvent, EdgeStream
from repro.patterns.exact import ExactCounter
from repro.samplers.wsd import WSD
from repro.streams.scenarios import light_deletion_stream, massive_deletion_stream
from repro.weights.heuristic import GPSHeuristicWeight, UniformWeight


def make_wsd(budget=50, pattern="triangle", weight=None, rng=0, **kw):
    return WSD(pattern, budget, weight or UniformWeight(), rng=rng, **kw)


class TestConstruction:
    def test_budget_below_pattern_size_rejected(self):
        with pytest.raises(ConfigurationError):
            WSD("triangle", 2, UniformWeight())

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            WSD("triangle", 0, UniformWeight())

    def test_initial_state(self):
        sampler = make_wsd()
        assert sampler.estimate == 0.0
        assert sampler.sample_size == 0
        assert sampler.tau_p == 0.0
        assert sampler.tau_q == 0.0


class TestAlgorithm1Cases:
    def test_case1_nonfull_admits_all_initially(self):
        """While τp = 0 and the reservoir is non-full, every edge enters."""
        sampler = make_wsd(budget=10)
        for i in range(5):
            sampler.process(EdgeEvent.insertion(i, i + 100))
        assert sampler.sample_size == 5
        assert sampler.tau_p == 0.0
        assert sampler.tau_q == 0.0

    def test_case2_full_reservoir_keeps_size(self):
        sampler = make_wsd(budget=5)
        for i in range(30):
            sampler.process(EdgeEvent.insertion(i, i + 100))
        assert sampler.sample_size == 5

    def test_case2_updates_tau_p_to_min_rank(self):
        sampler = make_wsd(budget=5)
        for i in range(6):
            sampler.process(EdgeEvent.insertion(i, i + 100))
        # After the first full insertion, τp equals the reservoir's
        # minimum rank observed at that step — strictly positive.
        assert sampler.tau_p > 0.0

    def test_tau_q_le_tau_p_once_full(self):
        sampler = make_wsd(budget=5)
        for i in range(50):
            sampler.process(EdgeEvent.insertion(i, i + 100))
            assert sampler.tau_q <= sampler.tau_p or sampler.tau_p == 0.0

    def test_tau_q_monotone_nondecreasing(self):
        sampler = make_wsd(budget=5)
        previous = 0.0
        for i in range(60):
            sampler.process(EdgeEvent.insertion(i, i + 100))
            assert sampler.tau_q >= previous
            previous = sampler.tau_q

    def test_case3_deletion_removes_sampled_edge(self):
        sampler = make_wsd(budget=10)
        sampler.process(EdgeEvent.insertion(1, 2))
        assert sampler.sample_size == 1
        sampler.process(EdgeEvent.deletion(1, 2))
        assert sampler.sample_size == 0

    def test_case3_deletion_keeps_thresholds(self):
        sampler = make_wsd(budget=4)
        for i in range(20):
            sampler.process(EdgeEvent.insertion(i, i + 100))
        tau_p, tau_q = sampler.tau_p, sampler.tau_q
        sampled = next(iter(sampler.sampled_edges()))
        sampler.process(EdgeEvent.deletion(*sampled))
        assert sampler.tau_p == tau_p
        assert sampler.tau_q == tau_q

    def test_deletion_of_unsampled_edge_is_noop_for_sample(self):
        sampler = make_wsd(budget=3)
        for i in range(20):
            sampler.process(EdgeEvent.insertion(i, i + 100))
        size = sampler.sample_size
        # Find an inserted edge not in the reservoir.
        sampled = set(sampler.sampled_edges())
        victim = next(
            (i, i + 100) for i in range(20) if (i, i + 100) not in sampled
        )
        sampler.process(EdgeEvent.deletion(*victim))
        assert sampler.sample_size == size

    def test_reservoir_never_exceeds_budget(self):
        sampler = make_wsd(budget=7, weight=GPSHeuristicWeight(), rng=3)
        edges = forest_fire(100, p=0.4, rng=1)
        stream = light_deletion_stream(edges, beta_l=0.3, rng=2)
        for event in stream:
            sampler.process(event)
            assert sampler.sample_size <= 7

    def test_sampled_graph_consistent_with_reservoir(self):
        sampler = make_wsd(budget=10, rng=3)
        edges = forest_fire(80, p=0.4, rng=4)
        stream = light_deletion_stream(edges, beta_l=0.4, rng=5)
        for event in stream:
            sampler.process(event)
            assert set(sampler.sampled_edges()) == set(
                sampler.sampled_graph.edges()
            )


class TestLemma1:
    def test_inclusion_probability_empirical(self):
        """Empirically, P[e in R(t)] == P[r(e) > τq] (Lemma 1 / Eq. 10).

        Run the same insertion-only prefix many times and compare the
        inclusion frequency of a fixed early edge against the average of
        the model probability min(1, w/τq).
        """
        edges = [(i, i + 1000) for i in range(60)]
        target = (5, 1005)
        runs = 3000
        included = 0
        prob_sum = 0.0
        for seed in range(runs):
            sampler = make_wsd(budget=10, rng=seed)
            for u, v in edges:
                sampler.process(EdgeEvent.insertion(u, v))
            tau_q = sampler.tau_q
            # Uniform weights: every edge has weight 1.
            prob_sum += min(1.0, 1.0 / tau_q) if tau_q > 0 else 1.0
            if target in set(sampler.sampled_edges()):
                included += 1
        empirical = included / runs
        model = prob_sum / runs
        assert abs(empirical - model) < 0.03

    def test_all_edges_equal_inclusion_probability(self):
        """With equal weights, all (non-recent) edges share one
        inclusion frequency — the property GPS loses under deletions
        (Example 1) and WSD restores."""
        n, budget, runs = 40, 8, 3000
        counts = np.zeros(n)
        for seed in range(runs):
            sampler = make_wsd(budget=budget, rng=seed)
            for i in range(n):
                sampler.process(EdgeEvent.insertion(i, i + 1000))
                # Delete an early edge mid-stream: the scenario from the
                # paper's Example 1.
                if i == 20:
                    sampler.process(EdgeEvent.deletion(10, 1010))
            for u, v in sampler.sampled_edges():
                counts[u] += 1
        freqs = counts / runs
        freqs = np.delete(freqs, 10)  # the deleted edge
        # Early edges (0..19, 21..n-1) should have statistically equal
        # frequencies; compare min and max among settled (old) edges.
        settled = freqs[: n - 5 - 1]
        assert settled.max() - settled.min() < 0.06


class TestTheorem4Unbiasedness:
    @pytest.mark.parametrize("weight_cls", [UniformWeight, GPSHeuristicWeight])
    def test_unbiased_triangles_light_deletion(self, weight_cls):
        edges = powerlaw_cluster(120, m=4, triangle_probability=0.7, rng=6)
        stream = light_deletion_stream(edges, beta_l=0.3, rng=7)
        truth = ExactCounter("triangle").process_stream(stream)
        assert truth > 0
        estimates = [
            WSD("triangle", 60, weight_cls(), rng=seed).process_stream(stream)
            for seed in range(400)
        ]
        mean = float(np.mean(estimates))
        stderr = float(np.std(estimates) / np.sqrt(len(estimates)))
        assert abs(mean - truth) < max(4 * stderr, 0.05 * truth)

    def test_unbiased_wedges_massive_deletion(self):
        edges = forest_fire(150, p=0.45, rng=8)
        stream = massive_deletion_stream(edges, alpha=0.02, beta_m=0.6, rng=9)
        truth = ExactCounter("wedge").process_stream(stream)
        assert truth > 0
        estimates = [
            WSD("wedge", 40, UniformWeight(), rng=seed).process_stream(stream)
            for seed in range(400)
        ]
        mean = float(np.mean(estimates))
        stderr = float(np.std(estimates) / np.sqrt(len(estimates)))
        assert abs(mean - truth) < max(4 * stderr, 0.05 * truth)

    def test_exact_when_budget_covers_stream(self):
        """With M >= all alive edges the estimator is exact."""
        edges = powerlaw_cluster(60, m=3, triangle_probability=0.6, rng=10)
        stream = light_deletion_stream(edges, beta_l=0.2, rng=11)
        truth = ExactCounter("triangle").process_stream(stream)
        estimate = WSD(
            "triangle", len(edges) + 10, GPSHeuristicWeight(), rng=12
        ).process_stream(stream)
        assert estimate == pytest.approx(truth)

    def test_estimate_returns_to_zero_when_all_deleted(self):
        events = [
            EdgeEvent.insertion(1, 2),
            EdgeEvent.insertion(2, 3),
            EdgeEvent.insertion(1, 3),
        ]
        events += [EdgeEvent.deletion(*e.edge) for e in reversed(events)]
        sampler = make_wsd(budget=10)
        sampler.process_stream(EdgeStream(events))
        assert sampler.estimate == pytest.approx(0.0)


class TestDiagnostics:
    def test_last_weight_tracks_insertions(self):
        sampler = make_wsd(budget=10, weight=GPSHeuristicWeight())
        sampler.process(EdgeEvent.insertion(1, 2))
        assert sampler.last_weight == 1.0  # 9*0 + 1
        sampler.process(EdgeEvent.insertion(2, 3))
        sampler.process(EdgeEvent.insertion(1, 3))
        assert sampler.last_weight == 10.0  # closes one triangle

    def test_last_context_exposes_instances(self):
        sampler = make_wsd(budget=10, capture_context=True)
        sampler.process(EdgeEvent.insertion(1, 2))
        sampler.process(EdgeEvent.insertion(2, 3))
        sampler.process(EdgeEvent.insertion(1, 3))
        assert len(sampler.last_context.instances) == 1

    def test_sampled_weight_lookup(self):
        sampler = make_wsd(budget=10, weight=GPSHeuristicWeight())
        sampler.process(EdgeEvent.insertion(1, 2))
        assert sampler.sampled_weight((1, 2)) == 1.0

    def test_exponential_rank_variant_runs(self):
        sampler = WSD(
            "triangle", 30, UniformWeight(), rank_fn="exponential", rng=1
        )
        edges = forest_fire(80, p=0.4, rng=2)
        stream = light_deletion_stream(edges, beta_l=0.3, rng=3)
        sampler.process_stream(stream)
        assert np.isfinite(sampler.estimate)

    def test_exponential_rank_unbiased(self):
        edges = powerlaw_cluster(80, m=3, triangle_probability=0.7, rng=20)
        stream = light_deletion_stream(edges, beta_l=0.2, rng=21)
        truth = ExactCounter("triangle").process_stream(stream)
        estimates = [
            WSD(
                "triangle", 50, UniformWeight(), rank_fn="exponential", rng=s
            ).process_stream(stream)
            for s in range(300)
        ]
        mean = float(np.mean(estimates))
        stderr = float(np.std(estimates) / np.sqrt(len(estimates)))
        assert abs(mean - truth) < max(4 * stderr, 0.08 * truth)
