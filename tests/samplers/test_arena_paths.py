"""Arena-backed estimator paths: identity contracts + lane coherence.

The sorted-slab arena reroutes the triangle/clique estimator work when
both endpoints are dense. These tests pin the contracts that make that
safe: per-event == batched == block bit-identity with slabs engaged,
arena-on vs arena-off agreement within float-regrouping tolerance,
checkpoint v3 round-trips as bit-identical continuations (including the
hysteresis-dependent slab set), v2 documents still loading, and the
payload lanes staying coherent with the sampler state they mirror
(weights across threshold generations, waiting-room membership across
WR exits).

The cutoff is lowered to 4 so a ~60-vertex graph exercises the slabs;
everything here must also pass verbatim at the production cutoff
(where the slabs simply never engage).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.edges import canonical_edge
from repro.graph.stream import DELETE, INSERT, EdgeEvent, EventBlock
from repro.samplers import GPS, GPSA, WRS, WSD, ThinkD, Triest
from repro.samplers import kernel as kernel_mod
from repro.samplers.checkpoint import restore_sampler, sampler_state_dict
from repro.weights.heuristic import GPSHeuristicWeight, UniformWeight

SEED = 20230


@pytest.fixture(autouse=True)
def low_cutoff():
    previous = kernel_mod.set_arena_cutoff(4)
    yield
    kernel_mod.set_arena_cutoff(previous)


def dense_stream(num_events, num_vertices=80, deletion_fraction=0.25,
                 seed=5):
    # NB: insertions need unused vertex pairs; keep num_events well
    # below num_vertices^2/2 or generation cannot terminate.
    rng = np.random.default_rng(seed)
    alive, pos, events = [], {}, []
    while len(events) < num_events:
        if alive and rng.random() < deletion_fraction:
            i = int(rng.integers(len(alive)))
            edge = alive[i]
            last = alive.pop()
            if i < len(alive):
                alive[i] = last
                pos[last] = i
            del pos[edge]
            events.append(EdgeEvent(DELETE, edge))
        else:
            u = int(rng.integers(num_vertices))
            v = int(rng.integers(num_vertices))
            if u == v:
                continue
            edge = (u, v) if u < v else (v, u)
            if edge in pos:
                continue
            pos[edge] = len(alive)
            alive.append(edge)
            events.append(EdgeEvent(INSERT, edge))
    return events


MAKERS = {
    "wsd": lambda p: WSD(p, 400, GPSHeuristicWeight(), rng=SEED),
    "gps": lambda p: GPS(p, 400, GPSHeuristicWeight(), rng=SEED),
    "gps-a": lambda p: GPSA(p, 400, GPSHeuristicWeight(), rng=SEED),
    "wsd-u": lambda p: WSD(p, 400, UniformWeight(), rng=SEED),
    "wrs": lambda p: WRS(p, 400, rng=SEED),
    "thinkd": lambda p: ThinkD(p, 400, rng=SEED),
    "triest": lambda p: Triest(p, 400, rng=SEED),
}


def stream_for(name, n=3000):
    if name == "gps":  # insertion-only: bounded by the pair count
        return dense_stream(2000, deletion_fraction=0.0)
    return dense_stream(n)


def build_and_run(name, pattern, events, how):
    sampler = MAKERS[name](pattern)
    if how == "per-event":
        for event in events:
            sampler.process(event)
    elif how == "batch":
        sampler.process_batch(events)
    else:
        sampler.process_batch(EventBlock.from_events(events))
    return sampler


class TestBitIdentityWithSlabs:
    @pytest.mark.parametrize("name", sorted(MAKERS))
    @pytest.mark.parametrize("pattern", ["triangle", "4-clique"])
    def test_per_event_batch_block_identical(self, name, pattern):
        events = stream_for(name)
        per_event = build_and_run(name, pattern, events, "per-event")
        batch = build_and_run(name, pattern, events, "batch")
        block = build_and_run(name, pattern, events, "block")
        assert per_event.estimate == batch.estimate == block.estimate
        # The whole point of the low cutoff: slabs must actually exist.
        arena = batch._sampled_graph.arena
        if name in ("thinkd", "triest"):
            assert arena is None  # C-level counts; arena is a net loss
        else:
            assert arena is not None and len(arena) > 0
            arena.check_invariants()

    @pytest.mark.parametrize("name", sorted(MAKERS))
    def test_arena_off_matches_within_tolerance(self, name):
        events = stream_for(name)
        on = build_and_run(name, "triangle", events, "batch")
        previous = kernel_mod.set_arena_acceleration(False)
        try:
            off = build_and_run(name, "triangle", events, "batch")
        finally:
            kernel_mod.set_arena_acceleration(previous)
        assert off._sampled_graph.arena is None
        rel = abs(on.estimate - off.estimate) / max(
            abs(off.estimate), 1e-12
        )
        assert rel <= 1e-6
        # Integer-count estimators must agree exactly.
        if name in ("thinkd", "triest"):
            assert on.estimate == off.estimate

    def test_chunked_batches_identical(self):
        events = stream_for("wsd")
        whole = build_and_run("wsd", "triangle", events, "batch")
        chunked = MAKERS["wsd"]("triangle")
        for start in range(0, len(events), 257):
            chunked.process_batch(events[start:start + 257])
        assert chunked.estimate == whole.estimate


class TestLaneCoherence:
    def test_weight_lanes_match_edge_weights(self):
        """Threshold-generation churn must never stale the lanes.

        The lane stores the (generation-invariant) weight; probability
        is derived at query time, so after a run full of τq bumps every
        live lane slot must equal the kernel's weight table exactly.
        """
        sampler = build_and_run("wsd", "triangle", stream_for("wsd"),
                                "batch")
        graph = sampler._sampled_graph
        assert sampler.threshold_generation > 0
        label = graph.interner.label
        checked = 0
        for vid in graph.arena.slab_ids():
            ids, lane = graph.arena.live_items(vid)
            u = label(vid)
            for k in range(len(ids)):
                edge = canonical_edge(u, label(int(ids[k])))
                assert lane[k] == sampler._edge_weights[edge]
                checked += 1
        assert checked > 0

    def test_membership_lanes_match_waiting_room(self):
        sampler = build_and_run("wrs", "triangle", stream_for("wrs"),
                                "batch")
        graph = sampler._sampled_graph
        label = graph.interner.label
        saw_reservoir = saw_wr = False
        for vid in graph.arena.slab_ids():
            ids, lane = graph.arena.live_items(vid)
            u = label(vid)
            for k in range(len(ids)):
                edge = canonical_edge(u, label(int(ids[k])))
                want = 1.0 if edge in sampler._waiting_room else 0.0
                assert lane[k] == want
                saw_wr |= want == 1.0
                saw_reservoir |= want == 0.0
        assert saw_wr and saw_reservoir

    @pytest.mark.parametrize("name", sorted(MAKERS))
    def test_slabs_mirror_adjacency(self, name):
        sampler = build_and_run(name, "triangle", stream_for(name),
                                "batch")
        graph = sampler._sampled_graph
        if graph.arena is None:
            pytest.skip("arena-less sampler")
        idmap = graph.interner._ids
        for vid in graph.arena.slab_ids():
            u = graph.interner.label(vid)
            ids, _ = graph.arena.live_items(vid)
            assert ids.tolist() == sorted(
                idmap[w] for w in graph.neighbors_view(u)
            )


class TestCheckpointV3:
    @pytest.mark.parametrize("name", sorted(MAKERS))
    def test_continuation_bit_identical(self, name):
        events = stream_for(name)
        half = len(events) // 2
        uninterrupted = build_and_run(name, "triangle", events, "batch")
        first = MAKERS[name]("triangle")
        first.process_batch(events[:half])
        state = sampler_state_dict(first)
        assert state["format"] == 4  # current format still carries arena state
        weight_fn = (
            first.weight_fn if hasattr(first, "weight_fn") else None
        )
        restored = restore_sampler(state, weight_fn)
        if first._sampled_graph.arena is not None:
            assert state["arena"]["cutoff"] == 4
            assert sorted(
                restored._sampled_graph.slabbed_vertices()
            ) == sorted(first._sampled_graph.slabbed_vertices())
        restored.process_batch(events[half:])
        assert restored.estimate == uninterrupted.estimate

    def test_hysteresis_slab_set_round_trips(self):
        """A slab kept only by hysteresis must survive the checkpoint.

        Degree in [cutoff/2, cutoff) keeps an existing slab alive but
        would not rebuild one from scratch — replay alone under-slabs
        the graph, so the v3 slab list is what restores it.
        """
        sampler = WSD("triangle", 400, UniformWeight(), rng=1)
        graph = sampler._sampled_graph
        for w in range(1, 6):  # degree 5 >= cutoff 4 → slab builds
            sampler.process(EdgeEvent(INSERT, (0, w)))
        assert graph.slabbed_vertices().count(0) == 1
        for w in (5, 4):  # degree falls to 3: hysteresis (>= 2) keeps it
            sampler.process(EdgeEvent(DELETE, (0, w)))
        assert 0 in graph.slabbed_vertices()
        assert graph.degree(0) < graph.slab_cutoff
        state = sampler_state_dict(sampler)
        assert ["i", 0] in state["arena"]["slabbed"]
        restored = restore_sampler(state, sampler.weight_fn)
        assert 0 in restored._sampled_graph.slabbed_vertices()
        # And the continuation stays bit-identical to never stopping.
        tail = [EdgeEvent(INSERT, (1, w)) for w in range(2, 5)]
        for event in tail:
            sampler.process(event)
            restored.process(event)
        assert restored.estimate == sampler.estimate

    def test_v2_document_still_loads(self):
        events = stream_for("wsd")
        sampler = MAKERS["wsd"]("triangle")
        sampler.process_batch(events[:1500])
        state = sampler_state_dict(sampler)
        v2 = {k: v for k, v in state.items() if k != "arena"}
        v2["format"] = 2
        restored = restore_sampler(v2, sampler.weight_fn)
        # Replay-derived slabs only (degree >= cutoff) — a valid
        # sampler whose estimates agree within regrouping tolerance.
        restored.process_batch(events[1500:])
        sampler.process_batch(events[1500:])
        rel = abs(restored.estimate - sampler.estimate) / max(
            abs(sampler.estimate), 1e-12
        )
        assert rel <= 1e-6


class TestAdjacencyArenaApi:
    def test_count_common_matches_set_path(self):
        sampler = build_and_run("wsd", "triangle", stream_for("wsd"),
                                "batch")
        graph = sampler._sampled_graph
        vertices = list(graph.vertices())[:12]
        for u in vertices:
            for v in vertices:
                if u == v:
                    continue
                assert graph.count_common(u, v) == len(
                    graph.common_neighbors(u, v)
                )

    def test_arena_common_neighbors_matches_set_path(self):
        sampler = build_and_run("wsd", "4-clique", stream_for("wsd"),
                                "batch")
        graph = sampler._sampled_graph
        vertices = list(graph.vertices())[:12]
        hits = 0
        for u in vertices:
            for v in vertices:
                if u == v:
                    continue
                via_arena = graph.arena_common_neighbors(u, v)
                if via_arena is not None:
                    hits += 1
                    assert via_arena == graph.common_neighbors(u, v)
        assert hits > 0

    def test_common_payloads_none_without_slabs(self):
        sampler = WSD("triangle", 50, UniformWeight(), rng=0)
        sampler.process(EdgeEvent(INSERT, (1, 2)))
        assert sampler._sampled_graph.common_payloads(1, 2) is None

    def test_neighbors_shares_empty_frozenset(self):
        graph = WSD("triangle", 50, UniformWeight(), rng=0)._sampled_graph
        assert graph.neighbors("missing") is graph.neighbors("other")
        assert graph.neighbors("missing") == frozenset()
