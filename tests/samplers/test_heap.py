"""Tests for the indexed min-heap."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.samplers.heap import IndexedMinHeap


class TestBasics:
    def test_push_peek_pop(self):
        heap = IndexedMinHeap()
        heap.push("a", 3.0)
        heap.push("b", 1.0)
        heap.push("c", 2.0)
        assert heap.peek_min() == ("b", 1.0)
        assert heap.pop_min() == ("b", 1.0)
        assert heap.pop_min() == ("c", 2.0)
        assert heap.pop_min() == ("a", 3.0)

    def test_len_and_contains(self):
        heap = IndexedMinHeap()
        heap.push("x", 1.0)
        assert len(heap) == 1
        assert "x" in heap
        assert "y" not in heap

    def test_duplicate_key_rejected(self):
        heap = IndexedMinHeap()
        heap.push("x", 1.0)
        with pytest.raises(KeyError):
            heap.push("x", 2.0)

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            IndexedMinHeap().pop_min()

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            IndexedMinHeap().peek_min()

    def test_remove_by_key(self):
        heap = IndexedMinHeap()
        heap.push("a", 3.0)
        heap.push("b", 1.0)
        assert heap.remove("a") == 3.0
        assert "a" not in heap
        assert heap.pop_min() == ("b", 1.0)

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            IndexedMinHeap().remove("nope")

    def test_remove_min_element(self):
        heap = IndexedMinHeap()
        for key, p in [("a", 1.0), ("b", 2.0), ("c", 3.0)]:
            heap.push(key, p)
        heap.remove("a")
        assert heap.peek_min() == ("b", 2.0)

    def test_priority_lookup(self):
        heap = IndexedMinHeap()
        heap.push("a", 7.5)
        assert heap.priority("a") == 7.5
        with pytest.raises(KeyError):
            heap.priority("b")

    def test_update_priority(self):
        heap = IndexedMinHeap()
        heap.push("a", 5.0)
        heap.push("b", 1.0)
        heap.update("a", 0.5)
        assert heap.peek_min() == ("a", 0.5)
        heap.update("a", 9.0)
        assert heap.peek_min() == ("b", 1.0)

    def test_update_missing_raises(self):
        with pytest.raises(KeyError):
            IndexedMinHeap().update("a", 1.0)

    def test_items_and_iter(self):
        heap = IndexedMinHeap()
        heap.push("a", 1.0)
        heap.push("b", 2.0)
        assert set(heap) == {"a", "b"}
        assert dict(heap.items()) == {"a": 1.0, "b": 2.0}

    def test_min_priority(self):
        heap = IndexedMinHeap()
        heap.push("a", 3.0)
        heap.push("b", 1.0)
        assert heap.min_priority() == 1.0
        with pytest.raises(IndexError):
            IndexedMinHeap().min_priority()

    def test_replace_min(self):
        heap = IndexedMinHeap()
        for key, p in [("a", 1.0), ("b", 2.0), ("c", 3.0)]:
            heap.push(key, p)
        evicted = heap.replace_min("d", 2.5)
        assert evicted == ("a", 1.0)
        assert "a" not in heap
        assert "d" in heap
        assert len(heap) == 3
        assert heap.peek_min() == ("b", 2.0)
        drained = [heap.pop_min() for _ in range(3)]
        assert drained == [("b", 2.0), ("d", 2.5), ("c", 3.0)]

    def test_replace_min_matches_pop_push(self):
        import random

        random.seed(3)
        a, b = IndexedMinHeap(), IndexedMinHeap()
        for i in range(64):
            p = random.random()
            a.push(i, p)
            b.push(i, p)
        for i in range(64, 500):
            p = random.random() * 2
            evicted = a.replace_min(i, p)
            popped = b.pop_min()
            b.push(i, p)
            assert evicted == popped
            assert a.peek_min()[1] == b.peek_min()[1]

    def test_replace_min_empty_or_duplicate_raises(self):
        heap = IndexedMinHeap()
        with pytest.raises(IndexError):
            heap.replace_min("a", 1.0)
        heap.push("a", 1.0)
        with pytest.raises(KeyError):
            heap.replace_min("a", 2.0)


class TestPropertyBased:
    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                              width=32), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_heapsort_matches_sorted(self, priorities):
        heap = IndexedMinHeap()
        for i, p in enumerate(priorities):
            heap.push(i, p)
        drained = [heap.pop_min()[1] for _ in range(len(priorities))]
        assert drained == sorted(priorities)

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["push", "pop", "remove"]),
                st.integers(0, 30),
                st.floats(0.0, 1000.0),
            ),
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_against_reference_model(self, operations):
        """Random interleavings agree with a (lazy) heapq reference."""
        heap = IndexedMinHeap()
        model: dict[int, float] = {}
        for op, key, priority in operations:
            if op == "push":
                if key in model:
                    continue
                heap.push(key, priority)
                model[key] = priority
            elif op == "pop":
                if not model:
                    continue
                popped_key, popped_priority = heap.pop_min()
                assert popped_priority == min(model.values())
                assert model.pop(popped_key) == popped_priority
            else:  # remove
                if key not in model:
                    continue
                assert heap.remove(key) == model.pop(key)
            assert len(heap) == len(model)
            if model:
                _, current_min = heap.peek_min()
                assert current_min == min(model.values())

    @given(st.lists(st.floats(0, 100), min_size=1, max_size=100),
           st.data())
    @settings(max_examples=30, deadline=None)
    def test_internal_heap_invariant(self, priorities, data):
        heap = IndexedMinHeap()
        for i, p in enumerate(priorities):
            heap.push(i, p)
        # Remove a random subset, then check the array is a valid heap.
        removable = list(range(len(priorities)))
        k = data.draw(st.integers(0, len(removable)))
        for key in removable[:k]:
            heap.remove(key)
        # The pair-tuple layout stores (priority, key) entries in one
        # array; the heap property holds on the priority slot.
        arr = heap._heap
        for i in range(len(arr)):
            for child in (2 * i + 1, 2 * i + 2):
                if child < len(arr):
                    assert arr[i][0] <= arr[child][0]
        # Position map consistent with the entry layout.
        for key, pos in heap._position.items():
            assert heap._heap[pos][1] == key
            assert heap.priority(key) == heap._heap[pos][0]

    def test_pair_tuple_layout(self):
        """White-box: entries are (priority, key) pairs in a single list."""
        heap = IndexedMinHeap()
        heap.push("a", 2.0)
        heap.push("b", 1.0)
        assert heap._heap[0] == (1.0, "b")
        assert set(heap._heap) == {(1.0, "b"), (2.0, "a")}

    def test_priority_ties_with_uncomparable_keys(self):
        """Equal priorities must never fall back to comparing keys."""
        heap = IndexedMinHeap()
        heap.push("str-key", 1.0)
        heap.push(("tuple", "key"), 1.0)
        heap.push(7, 1.0)
        heap.push(frozenset({1}), 0.5)
        assert heap.pop_min() == (frozenset({1}), 0.5)
        drained = {heap.pop_min()[0] for _ in range(3)}
        assert drained == {"str-key", ("tuple", "key"), 7}
