"""Tests for the random-pairing reservoir (Gemulla et al.)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.samplers.random_pairing import RandomPairingReservoir


class TestBasics:
    def test_fills_to_capacity(self):
        rp = RandomPairingReservoir(5, rng=0)
        for i in range(5):
            added, evicted = rp.insert(i)
            assert added and evicted is None
        assert len(rp) == 5

    def test_capacity_never_exceeded(self):
        rp = RandomPairingReservoir(5, rng=0)
        for i in range(100):
            rp.insert(i)
        assert len(rp) <= 5

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            RandomPairingReservoir(0)

    def test_duplicate_sampled_item_rejected(self):
        rp = RandomPairingReservoir(5, rng=0)
        rp.insert("a")
        with pytest.raises(ConfigurationError):
            rp.insert("a")

    def test_delete_of_sampled_item(self):
        rp = RandomPairingReservoir(5, rng=0)
        rp.insert("a")
        assert rp.delete("a") is True
        assert "a" not in rp
        assert rp.d_i == 1
        assert rp.population == 0

    def test_delete_of_unsampled_item(self):
        rp = RandomPairingReservoir(1, rng=0)
        rp.insert("a")
        rp.insert("b")
        unsampled = "a" if "a" not in rp else "b"
        assert rp.delete(unsampled) is False
        assert rp.d_o == 1
        assert rp.d_i == 0

    def test_pairing_compensates_deletions(self):
        """After a deletion of a sampled item, the next insertion is
        paired with it (d_i drains before standard sampling resumes)."""
        rp = RandomPairingReservoir(3, rng=0)
        for i in range(3):
            rp.insert(i)
        rp.delete(0)
        assert rp.d_i == 1
        added, evicted = rp.insert("new")
        assert added is True
        assert evicted is None
        assert rp.d_i == 0

    def test_iteration_matches_membership(self):
        rp = RandomPairingReservoir(4, rng=0)
        for i in range(4):
            rp.insert(i)
        assert set(rp) == {0, 1, 2, 3}


class TestProbabilities:
    def test_joint_probability_full_population_in_sample(self):
        rp = RandomPairingReservoir(10, rng=0)
        for i in range(5):
            rp.insert(i)
        assert rp.joint_inclusion_probability(2) == 1.0

    def test_joint_probability_zero_when_sample_too_small(self):
        rp = RandomPairingReservoir(10, rng=0)
        rp.insert(0)
        assert rp.joint_inclusion_probability(2) == 0.0

    def test_joint_probability_k_zero(self):
        rp = RandomPairingReservoir(10, rng=0)
        assert rp.joint_inclusion_probability(0) == 1.0

    def test_joint_probability_formula(self):
        rp = RandomPairingReservoir(2, rng=0)
        for i in range(10):
            rp.insert(i)
        s, n = len(rp), rp.population
        expected = (s / n) * ((s - 1) / (n - 1))
        assert rp.joint_inclusion_probability(2) == pytest.approx(expected)

    def test_triest_probability_uses_augmented_population(self):
        rp = RandomPairingReservoir(3, rng=0)
        for i in range(6):
            rp.insert(i)
        sampled = next(iter(rp))
        rp.delete(sampled)
        w = rp.population + rp.d_i + rp.d_o
        omega = min(rp.capacity, w)
        expected = 1.0
        for j in range(2):
            expected *= (omega - j) / (w - j)
        assert rp.triest_inclusion_probability(2) == pytest.approx(expected)

    def test_triest_probability_zero_when_omega_small(self):
        rp = RandomPairingReservoir(2, rng=0)
        rp.insert(0)
        assert rp.triest_inclusion_probability(3) == 0.0


class TestUniformity:
    def test_insertion_only_uniform(self):
        """Classic reservoir property: each of n items is sampled with
        probability M/n."""
        capacity, n, runs = 5, 25, 3000
        counts = np.zeros(n)
        for seed in range(runs):
            rp = RandomPairingReservoir(capacity, rng=seed)
            for i in range(n):
                rp.insert(i)
            for item in rp:
                counts[item] += 1
        freqs = counts / runs
        expected = capacity / n
        assert np.all(np.abs(freqs - expected) < 0.035)

    def test_uniform_after_deletions(self):
        """RP's guarantee: after deletions + compensating insertions the
        sample is still uniform over alive items."""
        capacity, runs = 4, 4000
        # Alive at the end: items 5..19 (0..4 deleted).
        alive = list(range(5, 20))
        counts = {i: 0 for i in alive}
        sizes = []
        for seed in range(runs):
            rp = RandomPairingReservoir(capacity, rng=seed)
            for i in range(12):
                rp.insert(i)
            for i in range(5):
                rp.delete(i)
            for i in range(12, 20):
                rp.insert(i)
            sizes.append(len(rp))
            for item in rp:
                if item in counts:
                    counts[item] += 1
        total = sum(counts.values())
        freqs = np.array([counts[i] / total for i in alive])
        # Uniformity over alive items (items 0..4 dead, never counted).
        assert np.all(np.abs(freqs - 1.0 / len(alive)) < 0.02)
