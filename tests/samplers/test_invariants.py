"""Property-based invariants for every sampler over random streams.

Hypothesis generates arbitrary feasible event sequences (random edge
toggles over a small vertex set); the invariants below must hold after
*every* event for *every* sampler:

* the sample never exceeds the budget M;
* the sampled graph mirrors the sample exactly;
* the estimate stays finite;
* WSD: τq <= τp whenever the reservoir has been full, and both are
  non-decreasing;
* observers see exactly the estimator's contributions (their sum
  reconstructs the estimate).
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.stream import EdgeEvent
from repro.samplers.gps_a import GPSA
from repro.samplers.thinkd import ThinkD
from repro.samplers.thinkd_fast import ThinkDFast
from repro.samplers.triest import Triest
from repro.samplers.wrs import WRS
from repro.samplers.wsd import WSD
from repro.weights.heuristic import GPSHeuristicWeight


@st.composite
def feasible_streams(draw):
    """Random feasible event sequences via edge toggling."""
    toggles = draw(
        st.lists(
            st.tuples(st.integers(0, 12), st.integers(0, 12)),
            min_size=0,
            max_size=150,
        )
    )
    alive = set()
    events = []
    for u, v in toggles:
        if u == v:
            continue
        edge = (min(u, v), max(u, v))
        if edge in alive:
            events.append(EdgeEvent.deletion(*edge))
            alive.discard(edge)
        else:
            events.append(EdgeEvent.insertion(*edge))
            alive.add(edge)
    return events


SAMPLER_FACTORIES = [
    pytest.param(
        lambda: WSD("triangle", 10, GPSHeuristicWeight(), rng=0), id="WSD"
    ),
    pytest.param(
        lambda: GPSA("triangle", 10, GPSHeuristicWeight(), rng=0), id="GPSA"
    ),
    pytest.param(lambda: Triest("triangle", 10, rng=0), id="Triest"),
    pytest.param(lambda: ThinkD("triangle", 10, rng=0), id="ThinkD"),
    pytest.param(lambda: WRS("triangle", 10, rng=0), id="WRS"),
    pytest.param(lambda: ThinkDFast("triangle", 0.5, rng=0), id="ThinkDFast"),
]


class TestUniversalInvariants:
    @pytest.mark.parametrize("factory", SAMPLER_FACTORIES)
    @given(events=feasible_streams())
    @settings(max_examples=30, deadline=None)
    def test_budget_graph_and_finiteness(self, factory, events):
        sampler = factory()
        hard_budget = not isinstance(sampler, ThinkDFast)
        for event in events:
            sampler.process(event)
            if hard_budget:
                assert sampler.sample_size <= sampler.budget
            assert set(sampler.sampled_edges()) == set(
                sampler.sampled_graph.edges()
            )
            assert math.isfinite(sampler.estimate)

    @pytest.mark.parametrize("factory", SAMPLER_FACTORIES)
    @given(events=feasible_streams())
    @settings(max_examples=20, deadline=None)
    def test_sample_subset_of_alive_edges(self, factory, events):
        sampler = factory()
        alive = set()
        for event in events:
            if event.is_insertion:
                alive.add(event.edge)
            else:
                alive.discard(event.edge)
            sampler.process(event)
            if isinstance(sampler, GPSA):
                # GPS-A keeps tagged ghosts; only untagged edges are the
                # useful sample.
                sampled = set(sampler.sampled_edges())
            else:
                sampled = set(sampler.sampled_edges())
            assert sampled <= alive


class TestWSDThresholdInvariants:
    @given(events=feasible_streams())
    @settings(max_examples=40, deadline=None)
    def test_tau_monotone_and_ordered(self, events):
        sampler = WSD("triangle", 6, GPSHeuristicWeight(), rng=1)
        last_tau_p = 0.0
        last_tau_q = 0.0
        was_full = False
        for event in events:
            sampler.process(event)
            assert sampler.tau_p >= last_tau_p
            assert sampler.tau_q >= last_tau_q
            last_tau_p, last_tau_q = sampler.tau_p, sampler.tau_q
            was_full = was_full or sampler.sample_size == sampler.budget
            if was_full and sampler.tau_p > 0.0:
                assert sampler.tau_q <= sampler.tau_p

    @given(events=feasible_streams())
    @settings(max_examples=30, deadline=None)
    def test_sampled_ranks_exceed_tau_p_at_admission(self, events):
        """Every reservoir entry's rank exceeded τp when admitted; since
        τp only grows via the minimum reservoir rank, all current ranks
        must exceed the τq threshold."""
        sampler = WSD("triangle", 6, GPSHeuristicWeight(), rng=2)
        for event in events:
            sampler.process(event)
            for edge in sampler.sampled_edges():
                assert sampler._reservoir.priority(edge) > sampler.tau_q or (
                    sampler.tau_q == 0.0
                )


class TestObserverConsistency:
    @pytest.mark.parametrize(
        "factory",
        [
            pytest.param(
                lambda: WSD("triangle", 10, GPSHeuristicWeight(), rng=3),
                id="WSD",
            ),
            pytest.param(
                lambda: GPSA("triangle", 10, GPSHeuristicWeight(), rng=3),
                id="GPSA",
            ),
            pytest.param(lambda: ThinkD("triangle", 10, rng=3), id="ThinkD"),
            pytest.param(lambda: WRS("triangle", 10, rng=3), id="WRS"),
            pytest.param(
                lambda: ThinkDFast("triangle", 0.5, rng=3), id="ThinkDFast"
            ),
        ],
    )
    @given(events=feasible_streams())
    @settings(max_examples=25, deadline=None)
    def test_observer_values_sum_to_estimate(self, factory, events):
        sampler = factory()
        seen = []
        sampler.instance_observers.append(
            lambda trigger, instance, value: seen.append(value)
        )
        for event in events:
            sampler.process(event)
        assert sum(seen) == pytest.approx(sampler.estimate, abs=1e-9)

    @given(events=feasible_streams())
    @settings(max_examples=20, deadline=None)
    def test_observer_instances_reference_current_or_trigger_edges(
        self, events
    ):
        sampler = WSD("triangle", 10, GPSHeuristicWeight(), rng=4)
        records = []
        sampler.instance_observers.append(
            lambda trigger, instance, value: records.append(
                (trigger, instance)
            )
        )
        for event in events:
            records.clear()
            sampler.process(event)
            for trigger, instance in records:
                assert trigger == event.edge
                # Other edges were sampled at emission time; they form a
                # valid triangle with the trigger.
                vertices = set(trigger)
                for a, b in instance:
                    vertices.update((a, b))
                assert len(vertices) == 3
