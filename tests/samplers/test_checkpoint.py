"""Tests for WSD checkpoint/restore."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.graph.generators import powerlaw_cluster
from repro.samplers.checkpoint import (
    load_wsd,
    restore_wsd,
    save_wsd,
    wsd_state_dict,
)
from repro.samplers.wsd import WSD
from repro.streams.scenarios import light_deletion_stream
from repro.weights.heuristic import GPSHeuristicWeight


@pytest.fixture(scope="module")
def stream():
    edges = powerlaw_cluster(100, m=4, triangle_probability=0.7, rng=0)
    return light_deletion_stream(edges, beta_l=0.3, rng=1)


def fresh_sampler(seed=7):
    return WSD("triangle", 40, GPSHeuristicWeight(), rng=seed)


class TestCheckpoint:
    def test_round_trip_preserves_state(self, stream):
        sampler = fresh_sampler()
        for event in stream[: len(stream) // 2]:
            sampler.process(event)
        state = wsd_state_dict(sampler)
        restored = restore_wsd(state, GPSHeuristicWeight())
        assert restored.estimate == sampler.estimate
        assert restored.tau_p == sampler.tau_p
        assert restored.tau_q == sampler.tau_q
        assert restored.time == sampler.time
        assert set(restored.sampled_edges()) == set(sampler.sampled_edges())

    def test_resume_equals_uninterrupted(self, stream):
        """Checkpoint mid-stream, restore, finish: identical to a run
        that never stopped (same rng continuation)."""
        half = len(stream) // 2
        uninterrupted = fresh_sampler()
        uninterrupted.process_stream(stream)

        first = fresh_sampler()
        for event in stream[:half]:
            first.process(event)
        restored = restore_wsd(
            wsd_state_dict(first), GPSHeuristicWeight()
        )
        for event in stream[half:]:
            restored.process(event)
        assert restored.estimate == pytest.approx(uninterrupted.estimate)
        assert set(restored.sampled_edges()) == set(
            uninterrupted.sampled_edges()
        )
        assert restored.tau_q == pytest.approx(uninterrupted.tau_q)

    def test_state_is_json_serialisable(self, stream):
        sampler = fresh_sampler()
        for event in stream[:200]:
            sampler.process(event)
        text = json.dumps(wsd_state_dict(sampler))
        assert json.loads(text)["pattern"] == "triangle"

    def test_file_round_trip(self, stream, tmp_path):
        sampler = fresh_sampler()
        for event in stream[:300]:
            sampler.process(event)
        path = tmp_path / "wsd.json"
        save_wsd(sampler, path)
        restored = load_wsd(path, GPSHeuristicWeight())
        assert restored.estimate == sampler.estimate

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_wsd(tmp_path / "missing.json", GPSHeuristicWeight())

    def test_malformed_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_wsd(path, GPSHeuristicWeight())

    def test_unsupported_format_version(self, stream):
        sampler = fresh_sampler()
        state = wsd_state_dict(sampler)
        state["format"] = 999
        with pytest.raises(ConfigurationError):
            restore_wsd(state, GPSHeuristicWeight())

    def test_string_vertices_supported(self):
        sampler = WSD("triangle", 10, GPSHeuristicWeight(), rng=0)
        from repro.graph.stream import EdgeEvent

        sampler.process(EdgeEvent.insertion("alice", "bob"))
        restored = restore_wsd(
            wsd_state_dict(sampler), GPSHeuristicWeight()
        )
        assert ("alice", "bob") in set(restored.sampled_edges())

    def test_unsupported_vertex_type_rejected(self):
        sampler = WSD("triangle", 10, GPSHeuristicWeight(), rng=0)
        from repro.graph.stream import EdgeEvent

        sampler.process(EdgeEvent.insertion((1, 2), (3, 4)))
        with pytest.raises(ConfigurationError):
            wsd_state_dict(sampler)
