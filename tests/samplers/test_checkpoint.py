"""Tests for sampler checkpoint/restore (WSD and the kernel family)."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.graph.generators import powerlaw_cluster
from repro.samplers import GPS, GPSA, WRS, ThinkD, Triest
from repro.samplers.checkpoint import (
    load_sampler,
    load_wsd,
    restore_sampler,
    restore_wsd,
    sampler_state_dict,
    save_sampler,
    save_wsd,
    wsd_state_dict,
)
from repro.samplers.wsd import WSD
from repro.streams.scenarios import light_deletion_stream
from repro.weights.heuristic import GPSHeuristicWeight


@pytest.fixture(scope="module")
def stream():
    edges = powerlaw_cluster(100, m=4, triangle_probability=0.7, rng=0)
    return light_deletion_stream(edges, beta_l=0.3, rng=1)


def fresh_sampler(seed=7):
    return WSD("triangle", 40, GPSHeuristicWeight(), rng=seed)


class TestCheckpoint:
    def test_round_trip_preserves_state(self, stream):
        sampler = fresh_sampler()
        for event in stream[: len(stream) // 2]:
            sampler.process(event)
        state = wsd_state_dict(sampler)
        restored = restore_wsd(state, GPSHeuristicWeight())
        assert restored.estimate == sampler.estimate
        assert restored.tau_p == sampler.tau_p
        assert restored.tau_q == sampler.tau_q
        assert restored.time == sampler.time
        assert set(restored.sampled_edges()) == set(sampler.sampled_edges())

    def test_resume_equals_uninterrupted(self, stream):
        """Checkpoint mid-stream, restore, finish: *bit-identical* to a
        run that never stopped (same rng continuation, same floats)."""
        half = len(stream) // 2
        uninterrupted = fresh_sampler()
        for event in stream:
            uninterrupted.process(event)

        first = fresh_sampler()
        for event in stream[:half]:
            first.process(event)
        restored = restore_wsd(
            wsd_state_dict(first), GPSHeuristicWeight()
        )
        for event in stream[half:]:
            restored.process(event)
        assert restored.estimate == uninterrupted.estimate
        assert set(restored.sampled_edges()) == set(
            uninterrupted.sampled_edges()
        )
        assert restored.tau_p == uninterrupted.tau_p
        assert restored.tau_q == uninterrupted.tau_q

    def test_resume_batch_path_bit_identical(self, stream):
        """The restored sampler's batched fast path continues exactly
        like the uninterrupted batched run — the regression guard for
        stale memoized state after restore."""
        half = len(stream) // 2
        uninterrupted = fresh_sampler()
        uninterrupted.process_batch(list(stream))

        first = fresh_sampler()
        first.process_batch(list(stream[:half]))
        restored = restore_wsd(wsd_state_dict(first), GPSHeuristicWeight())
        restored.process_batch(list(stream[half:]))
        assert restored.estimate == uninterrupted.estimate
        assert restored.tau_q == uninterrupted.tau_q

    def test_generation_counter_restored(self, stream):
        """The τq generation counter round-trips, so consumers keyed on
        it see a monotone counter across the checkpoint boundary, and
        the probability memo starts empty (no stale entries)."""
        sampler = fresh_sampler()
        for event in stream[: len(stream) // 2]:
            sampler.process(event)
        assert sampler.tau_q_generation > 0
        restored = restore_wsd(wsd_state_dict(sampler), GPSHeuristicWeight())
        assert restored.tau_q_generation == sampler.tau_q_generation
        assert restored._prob_cache == {}
        # Probabilities recomputed after restore match the originals.
        for edge in sampler.sampled_edges():
            assert restored.inclusion_probability(
                edge
            ) == sampler.inclusion_probability(edge)

    def test_v1_checkpoint_still_restores(self, stream):
        """Format-1 (WSD-only) checkpoints written before the kernel
        refactor restore correctly: τq maps onto the kernel threshold
        and the missing generation counter resets to zero."""
        sampler = fresh_sampler()
        for event in stream[:300]:
            sampler.process(event)
        state = wsd_state_dict(sampler)
        v1 = {
            "format": 1,
            "pattern": state["pattern"],
            "budget": state["budget"],
            "rank_fn": state["rank_fn"],
            "tau_p": state["tau_p"],
            "tau_q": state["tau_q"],
            "estimate": state["estimate"],
            "time": state["time"],
            "reservoir": [
                {k: e[k] for k in ("u", "v", "rank", "weight", "time")}
                for e in state["reservoir"]
            ],
            "rng_state": state["rng_state"],
        }
        restored = restore_wsd(v1, GPSHeuristicWeight())
        assert restored.estimate == sampler.estimate
        assert restored.tau_q == sampler.tau_q
        assert restored.tau_q_generation == 0
        assert set(restored.sampled_edges()) == set(sampler.sampled_edges())

    def test_state_is_json_serialisable(self, stream):
        sampler = fresh_sampler()
        for event in stream[:200]:
            sampler.process(event)
        text = json.dumps(wsd_state_dict(sampler))
        assert json.loads(text)["pattern"] == "triangle"

    def test_file_round_trip(self, stream, tmp_path):
        sampler = fresh_sampler()
        for event in stream[:300]:
            sampler.process(event)
        path = tmp_path / "wsd.json"
        save_wsd(sampler, path)
        restored = load_wsd(path, GPSHeuristicWeight())
        assert restored.estimate == sampler.estimate

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_wsd(tmp_path / "missing.json", GPSHeuristicWeight())

    def test_malformed_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_wsd(path, GPSHeuristicWeight())

    def test_unsupported_format_version(self, stream):
        sampler = fresh_sampler()
        state = wsd_state_dict(sampler)
        state["format"] = 999
        with pytest.raises(ConfigurationError):
            restore_wsd(state, GPSHeuristicWeight())

    def test_string_vertices_supported(self):
        sampler = WSD("triangle", 10, GPSHeuristicWeight(), rng=0)
        from repro.graph.stream import EdgeEvent

        sampler.process(EdgeEvent.insertion("alice", "bob"))
        restored = restore_wsd(
            wsd_state_dict(sampler), GPSHeuristicWeight()
        )
        assert ("alice", "bob") in set(restored.sampled_edges())

    def test_unsupported_vertex_type_rejected(self):
        sampler = WSD("triangle", 10, GPSHeuristicWeight(), rng=0)
        from repro.graph.stream import EdgeEvent

        sampler.process(EdgeEvent.insertion((1, 2), (3, 4)))
        with pytest.raises(ConfigurationError):
            wsd_state_dict(sampler)


def _insertion_only(stream):
    return [e for e in stream if e.is_insertion]


class TestKernelCheckpoints:
    """Generic save/restore for every kernel-based sampler."""

    @pytest.mark.parametrize(
        "factory,needs_weight_fn",
        [
            (lambda: WSD("triangle", 40, GPSHeuristicWeight(), rng=9), True),
            (lambda: GPSA("triangle", 40, GPSHeuristicWeight(), rng=9), True),
            (lambda: ThinkD("triangle", 40, rng=9), False),
            (lambda: Triest("triangle", 40, rng=9), False),
            (lambda: WRS("triangle", 40, rng=9), False),
        ],
        ids=["wsd", "gps-a", "thinkd", "triest", "wrs"],
    )
    def test_resume_equals_uninterrupted(
        self, stream, factory, needs_weight_fn
    ):
        """Checkpoint mid-stream, restore, finish: bit-identical."""
        half = len(stream) // 2
        uninterrupted = factory()
        for event in stream:
            uninterrupted.process(event)

        first = factory()
        for event in stream[:half]:
            first.process(event)
        weight_fn = GPSHeuristicWeight() if needs_weight_fn else None
        restored = restore_sampler(sampler_state_dict(first), weight_fn)
        for event in stream[half:]:
            restored.process(event)
        assert restored.estimate == uninterrupted.estimate
        assert set(restored.sampled_edges()) == set(
            uninterrupted.sampled_edges()
        )
        assert restored.sample_size == uninterrupted.sample_size
        assert restored.time == uninterrupted.time

    def test_4clique_resume_bit_identical(self):
        """Id-order-sensitive patterns (the clique enumerators sort by
        interned vertex id) stay bit-identical across restore: the
        checkpoint persists the interner's id order, so the restored
        sampler's enumeration — and float accumulation — order matches
        a run that never stopped."""
        from repro.graph.generators import powerlaw_cluster
        from repro.streams.scenarios import light_deletion_stream

        edges = powerlaw_cluster(80, m=10, triangle_probability=0.9, rng=4)
        clique_stream = light_deletion_stream(edges, beta_l=0.2, rng=2)
        half = len(clique_stream) // 2

        uninterrupted = WSD("4-clique", 200, GPSHeuristicWeight(), rng=4)
        for event in clique_stream:
            uninterrupted.process(event)

        first = WSD("4-clique", 200, GPSHeuristicWeight(), rng=4)
        for event in clique_stream[:half]:
            first.process(event)
        restored = restore_sampler(
            sampler_state_dict(first), GPSHeuristicWeight()
        )
        # The interner round-trips exactly (ids survive edge eviction,
        # so the reservoir alone could not reconstruct them).
        original = first._sampled_graph.interner
        cloned = restored._sampled_graph.interner
        assert cloned.labels() == original.labels()
        for event in clique_stream[half:]:
            restored.process(event)
        assert restored.estimate == uninterrupted.estimate

    def test_gps_resume_insertion_only(self, stream):
        events = _insertion_only(stream)
        half = len(events) // 2
        uninterrupted = GPS("triangle", 40, GPSHeuristicWeight(), rng=9)
        for event in events:
            uninterrupted.process(event)
        first = GPS("triangle", 40, GPSHeuristicWeight(), rng=9)
        for event in events[:half]:
            first.process(event)
        restored = restore_sampler(
            sampler_state_dict(first), GPSHeuristicWeight()
        )
        assert isinstance(restored, GPS)
        assert restored.threshold == first.threshold
        assert restored.threshold_generation == first.threshold_generation
        for event in events[half:]:
            restored.process(event)
        assert restored.estimate == uninterrupted.estimate
        assert restored.threshold == uninterrupted.threshold

    def test_gpsa_tags_round_trip(self, stream):
        sampler = GPSA("triangle", 40, GPSHeuristicWeight(), rng=4)
        for event in stream:
            sampler.process(event)
        assert sampler.num_tagged > 0, "fixture should tag some edges"
        restored = restore_sampler(
            sampler_state_dict(sampler), GPSHeuristicWeight()
        )
        assert restored.num_tagged == sampler.num_tagged
        assert restored.useful_sample_size == sampler.useful_sample_size
        assert restored._tagged == sampler._tagged
        assert set(restored.sampled_edges()) == set(sampler.sampled_edges())

    def test_thinkd_rp_counters_round_trip(self, stream):
        sampler = ThinkD("triangle", 40, rng=3)
        for event in stream:
            sampler.process(event)
        restored = restore_sampler(sampler_state_dict(sampler))
        assert restored._rp.d_i == sampler._rp.d_i
        assert restored._rp.d_o == sampler._rp.d_o
        assert restored._rp.population == sampler._rp.population
        assert restored.estimate == sampler.estimate

    def test_wrs_waiting_room_round_trips(self, stream):
        """WRS state splits across the waiting-room FIFO and the RP
        reservoir; both halves round-trip with their order (FIFO exit
        order and eviction-index order) intact."""
        sampler = WRS("triangle", 40, rng=3)
        for event in stream:
            sampler.process(event)
        assert sampler.waiting_room_size > 0
        restored = restore_sampler(sampler_state_dict(sampler))
        assert isinstance(restored, WRS)
        assert restored.waiting_room_capacity == sampler.waiting_room_capacity
        assert restored._rp.capacity == sampler._rp.capacity
        assert list(restored._waiting_room.items()) == list(
            sampler._waiting_room.items()
        )
        assert list(restored._rp) == list(sampler._rp)
        assert restored._rp.population == sampler._rp.population
        assert restored.estimate == sampler.estimate
        assert restored.sample_size == sampler.sample_size

    def test_wrs_custom_fraction_capacity_restored_exactly(self, stream):
        """A non-default waiting_room_fraction must survive restore:
        the capacity is stored, not re-derived from the default
        fraction."""
        sampler = WRS("triangle", 40, waiting_room_fraction=0.4, rng=5)
        for event in stream[:300]:
            sampler.process(event)
        restored = restore_sampler(sampler_state_dict(sampler))
        assert restored.waiting_room_capacity == 16
        assert restored._rp.capacity == 24
        for event in stream[300:500]:
            sampler.process(event)
            restored.process(event)
        assert restored.estimate == sampler.estimate

    def test_wrs_resume_batched_path_bit_identical(self, stream):
        """The restored WRS continues bit-identically through the
        batched ingestion driver too."""
        half = len(stream) // 2
        uninterrupted = WRS("triangle", 40, rng=11)
        uninterrupted.process_batch(list(stream))
        first = WRS("triangle", 40, rng=11)
        first.process_batch(list(stream[:half]))
        restored = restore_sampler(sampler_state_dict(first))
        restored.process_batch(list(stream[half:]))
        assert restored.estimate == uninterrupted.estimate
        assert set(restored.sampled_edges()) == set(
            uninterrupted.sampled_edges()
        )

    def test_triest_tau_round_trips(self, stream):
        sampler = Triest("triangle", 40, rng=3)
        for event in stream:
            sampler.process(event)
        restored = restore_sampler(sampler_state_dict(sampler))
        assert restored.tau == sampler.tau
        assert restored.estimate == sampler.estimate

    @pytest.mark.parametrize(
        "factory,needs_weight_fn",
        [
            (lambda: GPSA("triangle", 30, GPSHeuristicWeight(), rng=6), True),
            (lambda: ThinkD("triangle", 30, rng=6), False),
        ],
        ids=["gps-a", "thinkd"],
    )
    def test_file_round_trip(self, stream, tmp_path, factory, needs_weight_fn):
        sampler = factory()
        for event in stream[:400]:
            sampler.process(event)
        path = tmp_path / "sampler.json"
        save_sampler(sampler, path)
        weight_fn = GPSHeuristicWeight() if needs_weight_fn else None
        restored = load_sampler(path, weight_fn)
        assert type(restored) is type(sampler)
        assert restored.estimate == sampler.estimate
        assert restored.time == sampler.time

    def test_threshold_restore_requires_weight_fn(self, stream):
        sampler = GPSA("triangle", 30, GPSHeuristicWeight(), rng=1)
        for event in stream[:100]:
            sampler.process(event)
        with pytest.raises(ConfigurationError):
            restore_sampler(sampler_state_dict(sampler))

    def test_unknown_algorithm_tag_rejected(self, stream):
        sampler = ThinkD("triangle", 30, rng=0)
        for event in stream[:50]:
            sampler.process(event)
        state = sampler_state_dict(sampler)
        # Relabelling a ThinkD state as WRS leaves the waiting-room
        # fields missing; the restore must reject it cleanly.
        state["algorithm"] = "wrs"
        with pytest.raises(ConfigurationError):
            restore_sampler(state)
        state["algorithm"] = "corrupted"
        with pytest.raises(ConfigurationError):
            restore_sampler(state)
        # A v2 state that lost its tag entirely is corrupt, not WSD.
        del state["algorithm"]
        with pytest.raises(ConfigurationError):
            restore_sampler(state)

    def test_unsupported_sampler_rejected(self):
        from repro.samplers import ThinkDFast

        sampler = ThinkDFast("triangle", 0.5, rng=0)
        with pytest.raises(ConfigurationError):
            sampler_state_dict(sampler)

    def test_wsd_aliases_reject_other_algorithms(self, stream):
        thinkd = ThinkD("triangle", 30, rng=0)
        with pytest.raises(ConfigurationError):
            wsd_state_dict(thinkd)
        gpsa = GPSA("triangle", 30, GPSHeuristicWeight(), rng=0)
        for event in stream[:50]:
            gpsa.process(event)
        with pytest.raises(ConfigurationError):
            restore_wsd(sampler_state_dict(gpsa), GPSHeuristicWeight())
