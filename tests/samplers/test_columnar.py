"""Columnar ingestion parity and the vectorised wedge estimator.

Two contracts introduced by the columnar event pipeline:

1. feeding an :class:`EventBlock` through ``process_batch`` /
   ``process_stream`` is bit-identical to feeding the equivalent
   :class:`EdgeEvent` sequence — for every sampler, every pattern, and
   regardless of chunk boundaries;
2. the aggregated wedge-delta estimator (threshold kernels + WRS)
   leaves the sampling trajectory untouched and agrees with the scalar
   per-neighbour path up to float associativity, while per-event and
   batched ingestion stay bit-identical to each other on either path.
"""

import numpy as np
import pytest

from repro.graph.stream import EdgeEvent, EventBlock
from repro.samplers import kernel
from repro.samplers.gps import GPS
from repro.samplers.gps_a import GPSA
from repro.samplers.thinkd import ThinkD
from repro.samplers.thinkd_fast import ThinkDFast
from repro.samplers.triest import Triest
from repro.samplers.wrs import WRS
from repro.samplers.wsd import WSD
from repro.streams.scenarios import (
    build_stream,
    light_deletion_stream,
    massive_deletion_stream,
)
from repro.weights.heuristic import GPSHeuristicWeight, UniformWeight


def dynamic_stream(num_events=600, num_vertices=40, deletion_fraction=0.3,
                   seed=0):
    rng = np.random.default_rng(seed)
    alive = []
    events = []
    while len(events) < num_events:
        if alive and rng.random() < deletion_fraction:
            i = int(rng.integers(len(alive)))
            events.append(EdgeEvent.deletion(*alive.pop(i)))
        else:
            u = int(rng.integers(num_vertices))
            v = int(rng.integers(num_vertices))
            if u == v:
                continue
            edge = (u, v) if u < v else (v, u)
            if edge in alive:
                continue
            alive.append(edge)
            events.append(EdgeEvent.insertion(*edge))
    return events


#: The 8 samplers of the fixed-seed matrix (× 3 patterns × two
#: ingestion modes = the 48 tracked cells).
SAMPLER_FACTORIES = [
    ("wsd-h", lambda p: WSD(p, 60, GPSHeuristicWeight(), rng=42), True),
    ("wsd-u", lambda p: WSD(p, 60, UniformWeight(), rng=42), True),
    ("gps", lambda p: GPS(p, 60, GPSHeuristicWeight(), rng=42), False),
    ("gps-a", lambda p: GPSA(p, 60, GPSHeuristicWeight(), rng=42), True),
    ("thinkd", lambda p: ThinkD(p, 60, rng=42), True),
    ("triest", lambda p: Triest(p, 60, rng=42), True),
    ("wrs", lambda p: WRS(p, 60, rng=42), True),
    ("thinkd-fast", lambda p: ThinkDFast(p, 0.4, rng=42), True),
]


def state_of(sampler):
    return (
        sampler.estimate,
        sampler.time,
        sampler.sample_size,
        sorted(map(repr, sampler.sampled_edges())),
    )


class TestColumnarParity:
    @pytest.mark.parametrize("pattern", ["wedge", "triangle", "4-clique"])
    @pytest.mark.parametrize(
        "name,factory,dynamic", SAMPLER_FACTORIES,
        ids=[row[0] for row in SAMPLER_FACTORIES],
    )
    def test_block_matches_events_and_per_event(
        self, name, factory, dynamic, pattern
    ):
        events = dynamic_stream(
            600, deletion_fraction=0.3 if dynamic else 0.0, seed=11
        )
        block = EventBlock.from_events(events)
        per_event = factory(pattern)
        batched = factory(pattern)
        columnar = factory(pattern)
        for event in events:
            per_event.process(event)
        batched.process_batch(events)
        columnar.process_batch(block)
        assert state_of(per_event) == state_of(batched) == state_of(columnar)

    def test_block_chunk_boundaries_do_not_matter(self):
        events = dynamic_stream(500, seed=13)
        block = EventBlock.from_events(events)
        whole = WSD("triangle", 40, GPSHeuristicWeight(), rng=9)
        chunked = WSD("triangle", 40, GPSHeuristicWeight(), rng=9)
        whole.process_batch(block)
        for start in range(0, len(block), 37):
            chunked.process_batch(block[start:start + 37])
        assert state_of(whole) == state_of(chunked)

    def test_mixed_block_and_event_ingestion(self):
        events = dynamic_stream(300, seed=14)
        block = EventBlock.from_events(events)
        reference = WSD("triangle", 30, GPSHeuristicWeight(), rng=2)
        mixed = WSD("triangle", 30, GPSHeuristicWeight(), rng=2)
        reference.process_batch(events)
        mixed.process_batch(block[:100])
        mixed.process_batch(events[100:200])
        mixed.process_batch(block[200:])
        assert state_of(reference) == state_of(mixed)

    def test_process_stream_accepts_block(self):
        events = dynamic_stream(300, seed=19)
        sampler = WSD("triangle", 30, GPSHeuristicWeight(), rng=1)
        other = WSD("triangle", 30, GPSHeuristicWeight(), rng=1)
        sampler.process_stream(EventBlock.from_events(events))
        other.process_stream(events)
        assert sampler.estimate == other.estimate

    def test_generic_driver_accepts_block(self):
        # Observers force the per-event fallback driver; it must accept
        # blocks too and emit identical contributions.
        events = dynamic_stream(300, seed=16)
        direct, columnar = [], []
        one = WSD("triangle", 40, GPSHeuristicWeight(), rng=8)
        two = WSD("triangle", 40, GPSHeuristicWeight(), rng=8)
        one.instance_observers.append(
            lambda trigger, inst, value: direct.append((trigger, value))
        )
        two.instance_observers.append(
            lambda trigger, inst, value: columnar.append((trigger, value))
        )
        one.process_batch(events)
        two.process_batch(EventBlock.from_events(events))
        assert direct == columnar
        assert one.estimate == two.estimate


class TestColumnarScenarios:
    def test_massive_deletion_columnar_identical(self):
        edges = [(i, i + 1) for i in range(300)]
        stream = massive_deletion_stream(edges, alpha=0.05, rng=7)
        block = massive_deletion_stream(edges, alpha=0.05, rng=7,
                                        columnar=True)
        assert isinstance(block, EventBlock)
        assert block.to_stream() == stream

    def test_light_deletion_columnar_identical(self):
        edges = [(i, i + 1) for i in range(300)]
        stream = light_deletion_stream(edges, beta_l=0.3, rng=5)
        block = light_deletion_stream(edges, beta_l=0.3, rng=5,
                                      columnar=True)
        assert block.to_stream() == stream

    @pytest.mark.parametrize("scenario", ["insertion-only", "massive",
                                          "light"])
    def test_build_stream_columnar(self, scenario):
        edges = [(i, (i * 7 + 1) % 211) for i in range(200)
                 if i != (i * 7 + 1) % 211]
        stream = build_stream(edges, scenario, rng=3)
        block = build_stream(edges, scenario, rng=3, columnar=True)
        assert block.to_stream() == stream


class TestWedgeVectorization:
    def _toggle(self, enabled):
        return kernel.set_wedge_vectorization(enabled)

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: WSD("wedge", 60, GPSHeuristicWeight(), rng=42),
            lambda: GPSA("wedge", 60, GPSHeuristicWeight(), rng=42),
            lambda: WRS("wedge", 60, rng=42),
        ],
        ids=["wsd", "gps-a", "wrs"],
    )
    def test_scalar_and_vector_paths_agree(self, factory):
        events = dynamic_stream(800, seed=21)
        previous = self._toggle(False)
        try:
            scalar = factory()
        finally:
            self._toggle(previous)
        vector = factory()
        scalar.process_batch(events)
        vector.process_batch(events)
        # The sampling trajectory is identical (the estimate never
        # feeds back into sampling decisions)...
        assert sorted(scalar.sampled_edges()) == sorted(
            vector.sampled_edges()
        )
        assert scalar.time == vector.time
        # ...and the estimates agree up to float associativity.
        assert vector.estimate == pytest.approx(
            scalar.estimate, rel=1e-9
        )

    def test_tracker_only_for_wedge_and_inverse_uniform(self):
        assert WSD(
            "triangle", 30, UniformWeight(), rng=0
        )._wedge_tracker is None
        assert WSD(
            "wedge", 30, UniformWeight(), rng=0
        )._wedge_tracker is not None
        assert WSD(
            "wedge", 30, UniformWeight(), rank_fn="exponential", rng=0
        )._wedge_tracker is None

    def test_toggle_read_at_construction(self):
        previous = self._toggle(False)
        try:
            sampler = WSD("wedge", 30, UniformWeight(), rng=0)
        finally:
            self._toggle(previous)
        assert sampler._wedge_tracker is None
        assert WSD("wedge", 30, UniformWeight(), rng=0)._wedge_tracker \
            is not None

    def test_wedge_estimate_consistency_with_observers(self):
        # Observers force the per-instance path; the aggregate path
        # must agree with what the observers saw.
        events = dynamic_stream(500, seed=23)
        plain = WSD("wedge", 50, GPSHeuristicWeight(), rng=5)
        observed = WSD("wedge", 50, GPSHeuristicWeight(), rng=5)
        contributions = []
        observed.instance_observers.append(
            lambda trigger, inst, value: contributions.append(value)
        )
        plain.process_batch(events)
        observed.process_batch(events)
        assert contributions
        assert plain.estimate == pytest.approx(observed.estimate, rel=1e-9)

    def test_wrs_wedge_checkpoint_restores_aggregates(self):
        from repro.samplers.checkpoint import restore_sampler, \
            sampler_state_dict

        events = dynamic_stream(600, seed=31)
        sampler = WRS("wedge", 50, rng=3)
        sampler.process_batch(events[:300])
        resumed = restore_sampler(sampler_state_dict(sampler))
        assert resumed._wr_degrees == sampler._wr_degrees
        sampler.process_batch(events[300:])
        resumed.process_batch(events[300:])
        assert resumed.estimate == sampler.estimate

    def test_wsd_wedge_checkpoint_restores_tracker(self):
        from repro.samplers.checkpoint import restore_sampler, \
            sampler_state_dict

        events = dynamic_stream(600, seed=33)
        sampler = WSD("wedge", 50, GPSHeuristicWeight(), rng=3)
        sampler.process_batch(events[:300])
        resumed = restore_sampler(
            sampler_state_dict(sampler), GPSHeuristicWeight()
        )
        assert resumed._wedge_tracker.threshold == \
            sampler._wedge_tracker.threshold
        assert resumed._wedge_tracker.heavy_count == \
            sampler._wedge_tracker.heavy_count
        sampler.process_batch(events[300:])
        resumed.process_batch(events[300:])
        assert resumed.estimate == sampler.estimate
