"""Tests for rank functions: sampling law vs closed-form probability."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.samplers.ranks import (
    ExponentialRank,
    InverseUniformRank,
    get_rank_function,
)


class TestRegistry:
    def test_lookup_by_name(self):
        assert isinstance(
            get_rank_function("inverse-uniform"), InverseUniformRank
        )
        assert isinstance(get_rank_function("exponential"), ExponentialRank)

    def test_passthrough(self):
        rank = InverseUniformRank()
        assert get_rank_function(rank) is rank

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            get_rank_function("bogus")


@pytest.mark.parametrize(
    "rank_fn", [InverseUniformRank(), ExponentialRank()],
    ids=["inverse-uniform", "exponential"],
)
class TestRankContracts:
    def test_positive_ranks(self, rank_fn):
        rng = np.random.default_rng(0)
        ranks = [rank_fn.rank(2.0, rng) for _ in range(200)]
        assert all(r > 0 for r in ranks)

    def test_zero_weight_rejected(self, rank_fn):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            rank_fn.rank(0.0, rng)

    def test_probability_one_at_zero_threshold(self, rank_fn):
        assert rank_fn.inclusion_probability(3.0, 0.0) == 1.0

    def test_probability_monotone_in_weight(self, rank_fn):
        threshold = 0.5
        probs = [
            rank_fn.inclusion_probability(w, threshold)
            for w in (0.5, 1.0, 2.0, 4.0)
        ]
        assert all(a <= b for a, b in zip(probs, probs[1:]))

    def test_probability_decreasing_in_threshold(self, rank_fn):
        probs = [
            rank_fn.inclusion_probability(1.0, t) for t in (0.1, 0.3, 0.6, 0.9)
        ]
        assert all(a >= b for a, b in zip(probs, probs[1:]))

    def test_probability_in_unit_interval(self, rank_fn):
        for w in (0.2, 1.0, 10.0):
            for t in (0.0, 0.5, 1.0, 5.0):
                assert 0.0 <= rank_fn.inclusion_probability(w, t) <= 1.0

    @pytest.mark.parametrize("weight", [0.5, 1.0, 3.0])
    @pytest.mark.parametrize("threshold_quantile", [0.3, 0.7])
    def test_empirical_law_matches_formula(
        self, rank_fn, weight, threshold_quantile
    ):
        """Empirical P[rank > τ] matches inclusion_probability within
        Monte-Carlo tolerance — the property every estimator relies on."""
        rng = np.random.default_rng(42)
        samples = np.array([rank_fn.rank(weight, rng) for _ in range(20_000)])
        threshold = float(np.quantile(samples, threshold_quantile))
        empirical = float(np.mean(samples > threshold))
        expected = rank_fn.inclusion_probability(weight, threshold)
        assert abs(empirical - expected) < 0.02


class TestInverseUniformSpecifics:
    def test_rank_at_least_weight(self):
        rng = np.random.default_rng(1)
        fn = InverseUniformRank()
        assert all(fn.rank(3.0, rng) >= 3.0 for _ in range(100))

    def test_probability_formula(self):
        fn = InverseUniformRank()
        assert fn.inclusion_probability(1.0, 4.0) == 0.25
        assert fn.inclusion_probability(8.0, 4.0) == 1.0


class TestExponentialSpecifics:
    def test_rank_in_unit_interval(self):
        rng = np.random.default_rng(1)
        fn = ExponentialRank()
        ranks = [fn.rank(2.0, rng) for _ in range(100)]
        assert all(0.0 < r <= 1.0 for r in ranks)

    def test_probability_formula(self):
        fn = ExponentialRank()
        assert fn.inclusion_probability(1.0, 0.25) == 0.75
        assert fn.inclusion_probability(2.0, 0.5) == pytest.approx(0.75)
        assert fn.inclusion_probability(1.0, 1.5) == 0.0
