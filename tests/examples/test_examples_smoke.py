"""Smoke tests: every example program must run end to end.

The examples double as living documentation of the public API; without
an executed check they rot silently whenever a signature moves. Each
one finishes in seconds on its built-in defaults, so the smoke test
simply runs them as ``__main__`` in a subprocess (fresh interpreter:
no module-state leakage between examples, and import errors surface
exactly as a user would hit them).
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES_DIR = REPO_ROOT / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_are_discovered():
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH") else src
    )
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=240,
        env=env,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, (
        f"{name} failed\n--- stdout ---\n{result.stdout[-2000:]}\n"
        f"--- stderr ---\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{name} printed nothing"
