"""Tests for the exact incremental counter (ground truth)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import erdos_renyi, forest_fire
from repro.graph.stream import EdgeEvent, EdgeStream
from repro.patterns.exact import ExactCounter, exact_count_stream
from repro.patterns.matching import brute_force_count
from repro.streams.scenarios import light_deletion_stream


class TestExactCounter:
    def test_triangle_basic(self):
        counter = ExactCounter("triangle")
        for u, v in [(1, 2), (2, 3), (1, 3)]:
            counter.process(EdgeEvent.insertion(u, v))
        assert counter.count == 1

    def test_deletion_reverses(self):
        counter = ExactCounter("triangle")
        for u, v in [(1, 2), (2, 3), (1, 3)]:
            counter.process(EdgeEvent.insertion(u, v))
        counter.process(EdgeEvent.deletion(1, 3))
        assert counter.count == 0

    def test_process_returns_delta(self):
        counter = ExactCounter("triangle")
        counter.process(EdgeEvent.insertion(1, 2))
        counter.process(EdgeEvent.insertion(2, 3))
        assert counter.process(EdgeEvent.insertion(1, 3)) == 1
        assert counter.process(EdgeEvent.deletion(1, 3)) == -1

    def test_reset(self):
        counter = ExactCounter("wedge")
        counter.process(EdgeEvent.insertion(1, 2))
        counter.reset()
        assert counter.count == 0
        assert counter.graph.num_edges == 0

    def test_wedge_star(self):
        counter = ExactCounter("wedge")
        for leaf in range(1, 5):
            counter.process(EdgeEvent.insertion(0, leaf))
        # Star with 4 leaves: C(4, 2) = 6 wedges.
        assert counter.count == 6

    def test_four_clique_k4(self):
        counter = ExactCounter("4-clique")
        for u in range(4):
            for v in range(u + 1, 4):
                counter.process(EdgeEvent.insertion(u, v))
        assert counter.count == 1

    @pytest.mark.parametrize("pattern", ["triangle", "wedge", "4-clique"])
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_matches_brute_force_under_churn(self, pattern, seed):
        """Random insert/delete churn stays consistent with recounting."""
        edges = erdos_renyi(14, 40, rng=seed)
        stream = light_deletion_stream(edges, beta_l=0.5, rng=seed)
        counter = ExactCounter(pattern)
        for i, event in enumerate(stream):
            counter.process(event)
            if i % 17 == 0:
                assert counter.count == brute_force_count(
                    counter.graph, pattern
                )
        assert counter.count == brute_force_count(counter.graph, pattern)

    def test_process_stream_returns_final(self):
        edges = forest_fire(60, p=0.4, rng=1)
        stream = EdgeStream.from_edges(edges)
        counter = ExactCounter("triangle")
        final = counter.process_stream(stream)
        assert final == counter.count

    def test_never_negative_on_feasible_streams(self):
        edges = forest_fire(80, p=0.4, rng=2)
        stream = light_deletion_stream(edges, beta_l=0.6, rng=3)
        counter = ExactCounter("triangle")
        for event in stream:
            counter.process(event)
            assert counter.count >= 0


class TestExactCountStream:
    def test_trace_length(self):
        edges = forest_fire(40, p=0.4, rng=4)
        stream = EdgeStream.from_edges(edges)
        trace = exact_count_stream(stream, "triangle")
        assert len(trace) == len(stream)

    def test_trace_monotone_for_insertions(self):
        edges = forest_fire(40, p=0.4, rng=5)
        trace = exact_count_stream(EdgeStream.from_edges(edges), "wedge")
        assert all(a <= b for a, b in zip(trace, trace[1:]))
