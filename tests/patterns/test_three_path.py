"""Tests for the 3-path pattern (extension beyond the paper)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.adjacency import DynamicAdjacency
from repro.graph.generators import erdos_renyi, powerlaw_cluster
from repro.patterns.exact import ExactCounter
from repro.patterns.matching import brute_force_count, get_pattern
from repro.patterns.paths import ThreePath
from repro.streams.scenarios import light_deletion_stream


def build(edges):
    g = DynamicAdjacency()
    for u, v in edges:
        g.add_edge(u, v)
    return g


class TestThreePath:
    def test_registry(self):
        assert get_pattern("3-path").name == "3-path"
        assert get_pattern("path3").name == "3-path"
        assert ThreePath().num_edges == 3

    def test_middle_role(self):
        # w - u - v - x with new edge (u, v): edges (w,u), (v,x) exist.
        g = build([(0, 1), (2, 3)])  # 0-1, 2-3; insert (1, 2)
        instances = list(ThreePath().instances_completed(g, 1, 2))
        assert (((0, 1), (2, 3)) in instances) or (
            ((2, 3), (0, 1)) in instances
        )
        assert len(instances) == 1

    def test_end_role(self):
        # v - u missing; path u - w - x with new end edge (v, u)?
        # Graph: 1-2, 2-3. Insert (0, 1): path 0-1-2-3.
        g = build([(1, 2), (2, 3)])
        instances = list(ThreePath().instances_completed(g, 0, 1))
        assert len(instances) == 1
        assert set(instances[0]) == {(1, 2), (2, 3)}

    def test_square_counts_four_paths(self):
        # Cycle 0-1-2-3-0: each edge removal leaves a 3-path; total
        # 3-paths in C4 = 4.
        g = build([(0, 1), (1, 2), (2, 3)])
        # inserting (0, 3) completes: middle role 1-0-3-2 and two end
        # roles 0-3? enumerate and compare with brute force delta.
        before = brute_force_count(g, "3-path")
        delta = ThreePath().count_completed(g, 0, 3)
        g.add_edge(0, 3)
        after = brute_force_count(g, "3-path")
        assert delta == after - before

    def test_no_degenerate_paths_in_triangle(self):
        # Closing a triangle adds no *simple* 4-vertex path through the
        # new edge beyond those using outside vertices.
        g = build([(0, 1), (1, 2)])
        instances = list(ThreePath().instances_completed(g, 0, 2))
        # Only 3 vertices exist: no valid 4-vertex path.
        assert instances == []

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_incremental_identity(self, seed):
        edges = erdos_renyi(12, 30, rng=seed)
        g = DynamicAdjacency()
        total = 0
        pattern = ThreePath()
        for u, v in edges:
            total += pattern.count_completed(g, u, v)
            g.add_edge(u, v)
        assert total == brute_force_count(g, "3-path")

    @given(st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_exact_counter_under_churn(self, seed):
        edges = erdos_renyi(10, 25, rng=seed)
        stream = light_deletion_stream(edges, beta_l=0.5, rng=seed)
        counter = ExactCounter("3-path")
        counter.process_stream(stream)
        assert counter.count == brute_force_count(counter.graph, "3-path")

    def test_wsd_unbiased_on_three_paths(self):
        from repro.samplers.wsd import WSD
        from repro.weights.heuristic import UniformWeight

        edges = powerlaw_cluster(60, m=3, triangle_probability=0.5, rng=2)
        stream = light_deletion_stream(edges, beta_l=0.2, rng=3)
        truth = ExactCounter("3-path").process_stream(stream)
        assert truth > 0
        estimates = [
            WSD("3-path", 60, UniformWeight(), rng=s).process_stream(stream)
            for s in range(300)
        ]
        mean = float(np.mean(estimates))
        stderr = float(np.std(estimates) / np.sqrt(len(estimates)))
        assert abs(mean - truth) < max(4 * stderr, 0.08 * truth)

    def test_instances_have_distinct_vertices(self):
        g = build([(0, 1), (1, 2), (2, 3), (0, 2), (1, 3)])
        for instance in ThreePath().instances_completed(g, 0, 3):
            vertices = {0, 3}
            for a, b in instance:
                vertices.update((a, b))
            assert len(vertices) == 4
