"""Tests for pattern definitions and local instance enumeration."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.graph.adjacency import DynamicAdjacency
from repro.graph.edges import canonical_edge
from repro.patterns.cliques import FourClique, KClique, Triangle
from repro.patterns.matching import brute_force_count, get_pattern, pattern_names
from repro.patterns.paths import Wedge


def build(edges):
    g = DynamicAdjacency()
    for u, v in edges:
        g.add_edge(u, v)
    return g


class TestRegistry:
    def test_names(self):
        assert pattern_names() == ["3-path", "4-clique", "triangle", "wedge"]

    @pytest.mark.parametrize(
        "alias,name",
        [
            ("triangles", "triangle"),
            ("3-clique", "triangle"),
            ("wedges", "wedge"),
            ("path2", "wedge"),
            ("4clique", "4-clique"),
            ("four-clique", "4-clique"),
        ],
    )
    def test_aliases(self, alias, name):
        assert get_pattern(alias).name == name

    def test_k_clique_resolution(self):
        pattern = get_pattern("5-clique")
        assert isinstance(pattern, KClique)
        assert pattern.num_edges == 10

    def test_pattern_passthrough(self):
        triangle = Triangle()
        assert get_pattern(triangle) is triangle

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            get_pattern("hexagon")

    def test_kclique_requires_k_ge_3(self):
        with pytest.raises(ConfigurationError):
            KClique(2)

    def test_equality_by_name(self):
        assert Triangle() == KClique(3) or Triangle().name != KClique(3).name
        assert Triangle() == Triangle()
        assert Triangle() != Wedge()


class TestTriangle:
    def test_num_edges(self):
        assert Triangle().num_edges == 3

    def test_instances_simple(self):
        g = build([(1, 3), (2, 3)])
        instances = list(Triangle().instances_completed(g, 1, 2))
        assert instances == [((1, 3), (2, 3))]

    def test_count_matches_enumeration(self):
        g = build([(1, 3), (2, 3), (1, 4), (2, 4), (1, 5)])
        tri = Triangle()
        assert tri.count_completed(g, 1, 2) == 2
        assert len(list(tri.instances_completed(g, 1, 2))) == 2

    def test_no_instances_without_common_neighbor(self):
        g = build([(1, 3), (2, 4)])
        assert Triangle().count_completed(g, 1, 2) == 0


class TestWedge:
    def test_num_edges(self):
        assert Wedge().num_edges == 2

    def test_instances(self):
        g = build([(1, 3), (2, 4), (2, 5)])
        instances = set(Wedge().instances_completed(g, 1, 2))
        assert instances == {((1, 3),), ((2, 4),), ((2, 5),)}

    def test_count_is_degree_sum(self):
        g = build([(1, 3), (1, 4), (2, 5)])
        assert Wedge().count_completed(g, 1, 2) == 3

    def test_excludes_endpoint_duplicates(self):
        # Neighbour equal to the other endpoint is skipped in
        # enumeration (cannot happen for feasible streams, but the
        # enumerator must not emit a degenerate wedge).
        g = build([(1, 3)])
        instances = list(Wedge().instances_completed(g, 1, 3))
        assert ((1, 3),) not in instances


class TestFourClique:
    def test_num_edges(self):
        assert FourClique().num_edges == 6

    def test_single_instance(self):
        # K4 minus the edge (1,2).
        g = build([(1, 3), (1, 4), (2, 3), (2, 4), (3, 4)])
        instances = list(FourClique().instances_completed(g, 1, 2))
        assert len(instances) == 1
        assert set(instances[0]) == {(1, 3), (1, 4), (2, 3), (2, 4), (3, 4)}

    def test_requires_common_pair_adjacent(self):
        # 3 and 4 both adjacent to 1 and 2, but (3,4) missing.
        g = build([(1, 3), (1, 4), (2, 3), (2, 4)])
        assert list(FourClique().instances_completed(g, 1, 2)) == []

    def test_matches_kclique4(self):
        g = build(
            [(a, b) for a in range(5) for b in range(a + 1, 5)]
        )  # K5
        g.remove_edge(0, 1)
        four = list(FourClique().instances_completed(g, 0, 1))
        k4 = list(KClique(4).instances_completed(g, 0, 1))
        assert len(four) == len(k4) == 3
        assert {frozenset(i) for i in four} == {frozenset(i) for i in k4}


class TestAgainstNetworkx:
    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_triangle_brute_force_matches_networkx(self, seed):
        from repro.graph.generators import erdos_renyi

        edges = erdos_renyi(25, 60, rng=seed)
        g = build(edges)
        nxg = nx.Graph(edges)
        expected = sum(nx.triangles(nxg).values()) // 3
        assert brute_force_count(g, "triangle") == expected

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_local_enumeration_sums_to_global(self, seed):
        """Inserting edges one by one and summing completions equals the
        global triangle count (the incremental-counting identity)."""
        from repro.graph.generators import erdos_renyi

        edges = erdos_renyi(20, 50, rng=seed)
        g = DynamicAdjacency()
        total = 0
        tri = Triangle()
        for u, v in edges:
            total += tri.count_completed(g, u, v)
            g.add_edge(u, v)
        assert total == brute_force_count(g, "triangle")

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_wedge_identity(self, seed):
        from repro.graph.generators import erdos_renyi

        edges = erdos_renyi(15, 35, rng=seed)
        g = DynamicAdjacency()
        total = 0
        wedge = Wedge()
        for u, v in edges:
            total += wedge.count_completed(g, u, v)
            g.add_edge(u, v)
        assert total == brute_force_count(g, "wedge")

    @given(st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_four_clique_identity(self, seed):
        from repro.graph.generators import erdos_renyi

        edges = erdos_renyi(12, 40, rng=seed)
        g = DynamicAdjacency()
        total = 0
        fc = FourClique()
        for u, v in edges:
            total += fc.count_completed(g, u, v)
            g.add_edge(u, v)
        assert total == brute_force_count(g, "4-clique")

    def test_instance_edges_exist_in_adjacency(self):
        from repro.graph.generators import erdos_renyi

        edges = erdos_renyi(15, 40, rng=3)
        g = DynamicAdjacency()
        for u, v in edges:
            for pattern in (Triangle(), Wedge(), FourClique()):
                for instance in pattern.instances_completed(g, u, v):
                    for a, b in instance:
                        assert g.has_edge(a, b)
                        assert canonical_edge(a, b) == (a, b)
            g.add_edge(u, v)
