"""WedgeDeltaTracker: the O(1) aggregated wedge-delta state machine."""

import pytest

from repro.patterns.paths import WedgeDeltaTracker


def brute_delta(edges, threshold, u, v):
    """Reference: Σ over incident sampled edges of 1/min(1, w/τ)."""
    total = 0.0
    for (a, b), w in edges.items():
        for centre in (u, v):
            if centre in (a, b):
                p = 1.0 if threshold <= 0.0 else min(1.0, w / threshold)
                total += 1.0 / p
    return total


class TestTracker:
    def test_zero_threshold_counts_degrees(self):
        t = WedgeDeltaTracker()
        t.add((1, 2), 5.0)
        t.add((1, 3), 0.25)
        assert t.delta(1, 9) == 2.0
        assert t.delta(2, 3) == 2.0
        assert t.delta(7, 9) == 0.0

    def test_heavy_light_split(self):
        t = WedgeDeltaTracker()
        t.add((1, 2), 8.0)
        t.add((1, 3), 2.0)
        t.raise_threshold(4.0)  # edge (1,3) migrates to light
        # delta(1, x) = 1 (heavy) + 4 * (1/2) = 3
        assert t.delta(1, 9) == pytest.approx(3.0)
        # weight == threshold stays heavy (p = 1 exactly)
        t.add((4, 5), 4.0)
        assert t.delta(4, 9) == 1.0

    def test_matches_brute_force_through_random_history(self):
        import numpy as np

        rng = np.random.default_rng(7)
        t = WedgeDeltaTracker()
        live = {}
        threshold = 0.0
        for step in range(4000):
            action = rng.random()
            if action < 0.5 or not live:
                u = int(rng.integers(30))
                v = int(rng.integers(30))
                if u == v:
                    continue
                edge = (min(u, v), max(u, v))
                if edge in live:
                    continue
                w = float(rng.uniform(0.1, 20.0))
                live[edge] = w
                t.add(edge, w)
            elif action < 0.8:
                edge = list(live)[int(rng.integers(len(live)))]
                del live[edge]
                t.remove(edge)
            else:
                threshold += float(rng.uniform(0.0, 0.5))
                t.raise_threshold(threshold)
            if step % 500 == 0:
                a, b = int(rng.integers(30)), int(rng.integers(30))
                expected = brute_delta(live, threshold, a, b) if a != b \
                    else None
                if expected is not None:
                    assert t.delta(a, b) == pytest.approx(
                        expected, rel=1e-9, abs=1e-9
                    )

    def test_removal_then_readd_with_same_weight(self):
        # Stale heap entries must not double-migrate a re-added edge.
        t = WedgeDeltaTracker()
        t.add((1, 2), 5.0)
        t.remove((1, 2))
        t.add((1, 2), 5.0)
        t.raise_threshold(6.0)
        assert t.delta(1, 9) == pytest.approx(6.0 / 5.0)
        assert t.heavy_count == {}

    def test_threshold_decrease_rebuilds(self):
        t = WedgeDeltaTracker()
        t.add((1, 2), 2.0)
        t.raise_threshold(10.0)
        assert t.delta(1, 9) == pytest.approx(5.0)
        t.set_threshold(1.0)  # decrease: everything reclassifies heavy
        assert t.delta(1, 9) == 1.0

    def test_len_tracks_live_edges(self):
        t = WedgeDeltaTracker()
        t.add((1, 2), 1.0)
        t.add((2, 3), 1.0)
        t.remove((1, 2))
        assert len(t) == 1

    def test_compaction_bounds_stale_heap_entries(self):
        t = WedgeDeltaTracker()
        for i in range(500):
            t.add((i, i + 1000), 5.0)
            t.remove((i, i + 1000))
        assert len(t._heavy_heap) <= 2 * len(t._entries) + 64
