"""Smoke tests for every table/figure regenerator (tiny configurations).

These validate structure, determinism of layout, and that each paper
artefact's entry point runs end to end; the benchmark suite runs them at
full (scaled) size.
"""

import pytest

from repro.experiments import figures, tables
from repro.experiments.algorithms import PolicyStore
from repro.utils.tables import format_sections, format_table


@pytest.fixture(scope="module")
def store():
    """A fast-training policy store shared by the smoke tests."""
    return PolicyStore(iterations=15, num_streams=1, dataset_scale=0.3)


FAST = dict(trials=2, dataset_scale=0.3, seed=0)


class TestFormatHelpers:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.125]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # rectangular

    def test_format_table_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_sections_contains_titles(self):
        text = format_sections(
            ["x"], [("S1", [[1]]), ("S2", [[2]])], title="T"
        )
        for token in ("T", "S1", "S2"):
            assert token in text


class TestCountTables:
    def test_table_counts_structure(self, store):
        result = tables.table_counts(
            "triangle", "light",
            datasets=("cit-PT",),
            algorithms=("WSD-L", "WSD-H", "Triest"),
            policy_store=store, **FAST,
        )
        assert result.headers == ["Graph", "WSD-L", "WSD-H", "Triest"]
        assert [name for name, _ in result.sections] == [
            "ARE (%)", "MARE (%)", "Time (s)",
        ]
        are = result.value("ARE (%)", "cit-PT", "WSD-L")
        assert are >= 0.0
        assert "cit-PT" in result.format()

    def test_table_counts_wedge(self, store):
        result = tables.table_counts(
            "wedge", "massive",
            datasets=("cit-PT",),
            algorithms=("WSD-H", "ThinkD"),
            policy_store=store, **FAST,
        )
        assert result.value("ARE (%)", "cit-PT", "ThinkD") >= 0.0

    def test_four_clique_default_datasets_drop_soc(self):
        assert "soc-TW" not in tables.FOUR_CLIQUE_DATASETS
        assert "soc-TW" in tables.COUNT_TABLE_DATASETS

    def test_unknown_scenario_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            tables.scenario_by_name("sideways")


class TestInsertionOnlyTable:
    def test_structure(self, store):
        result = tables.table_insertion_only(
            dataset="cit-PT",
            algorithms=("WSD-L", "GPS", "ThinkD"),
            policy_store=store, **FAST,
        )
        assert result.headers[0] == "Metric"
        assert result.value("ARE (%)", "ARE (%)", "GPS") >= 0.0


class TestTransferabilityTable:
    def test_structure(self, store):
        result = tables.table_transferability(
            "light",
            test_datasets=("cit-PT",),
            train_datasets=("cit-HE", "com-DB"),
            policy_store=store, **FAST,
        )
        row = result.raw["ARE (%)"]["cit-PT"]
        assert set(row) == {"cit-HE", "com-DB", "WSD-H"}


class TestAblationTable:
    def test_structure(self, store):
        result = tables.table_ablation(
            scenarios=("light",),
            datasets=("cit-PT",),
            policy_store=store, **FAST,
        )
        section = "ARE (%) — light scenario"
        cells = result.raw[section]["cit-PT"]
        assert set(cells) == {"WSD-L (Max)", "WSD-L (Avg)", "WSD-H"}


class TestTrainingTimeTable:
    def test_structure(self):
        result = tables.table_training_time(
            "light",
            patterns=("triangle",),
            train_datasets=("cit-HE",),
            dataset_scale=0.3,
            iterations=10,
        )
        assert result.value("Time (s)", "cit-HE", "triangle") > 0.0


class TestFigures:
    def test_scalability(self, store):
        result = figures.figure_scalability(
            "light", sizes=(200, 400), budget=60, trials=1,
            policy_store=store, seed=0,
        )
        assert len(result.ys("WSD-L ARE (%)")) == 2
        assert len(result.ys("WSD-H time (s)")) == 2
        assert "events" in result.format()

    def test_ordering(self, store):
        result = figures.figure_ordering(
            "light", dataset="cit-PT", orderings=("natural", "uar"),
            algorithms=("WSD-H", "Triest"), trials=1, seed=0,
            policy_store=store,
        )
        assert len(result.series["WSD-H"]) == 2

    def test_reservoir_size(self, store):
        result = figures.figure_reservoir_size(
            "light", dataset="cit-PT", fractions=(0.02, 0.05),
            algorithms=("WSD-H", "ThinkD"), trials=1, seed=0,
            policy_store=store,
        )
        assert len(result.series["ThinkD"]) == 2

    def test_training_size(self):
        result = figures.figure_training_size(
            "light", train_sizes=(100, 200), test_size=400,
            iterations=10, trials=1, seed=0,
        )
        assert len(result.ys("train time (s)")) == 2
        assert len(result.ys("ARE (%)")) == 2

    def test_weight_relationship(self, store):
        result = figures.figure_weight_relationship(
            "light", dataset="cit-PT", runs=2, seed=0, policy_store=store,
        )
        series = result.series["mean weight"]
        assert len(series) >= 1
        assert all(weight >= 1.0 for _, weight in series)

    def test_beta_sweep(self, store):
        result = figures.figure_beta_sweep(
            dataset="cit-PT", betas=(0.2,),
            algorithms=("WSD-H", "Triest"), trials=1, seed=0,
            policy_store=store,
        )
        assert set(result) == {"massive", "light"}
        assert len(result["light"].series["WSD-H"]) == 1


class TestCLI:
    def test_list(self, capsys):
        from repro.experiments.cli import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out
        assert "fig5" in out

    def test_unknown_target(self, capsys):
        from repro.experiments.cli import main

        assert main(["tableX"]) == 2
