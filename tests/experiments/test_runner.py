"""Tests for the experiment runner and the algorithm factory."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.algorithms import (
    ALGORITHMS,
    DYNAMIC_ALGORITHMS,
    PolicyStore,
    make_sampler,
    training_dataset_for,
)
from repro.experiments.config import LIGHT, ExperimentConfig
from repro.experiments.runner import (
    compute_ground_truth,
    run_algorithm,
    run_cell,
    run_sampler_trial,
)
from repro.graph.generators import powerlaw_cluster
from repro.patterns.exact import ExactCounter
from repro.rl.policy import Policy
from repro.samplers.gps import GPS
from repro.samplers.gps_a import GPSA
from repro.samplers.thinkd import ThinkD
from repro.samplers.triest import Triest
from repro.samplers.wrs import WRS
from repro.samplers.wsd import WSD
from repro.streams.scenarios import light_deletion_stream


@pytest.fixture(scope="module")
def workload():
    edges = powerlaw_cluster(100, m=4, triangle_probability=0.7, rng=0)
    stream = light_deletion_stream(edges, beta_l=0.2, rng=1)
    truth = compute_ground_truth(stream, "triangle", 10)
    return stream, truth


def dummy_policy():
    return Policy(weights=np.zeros(6), bias=0.0)


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("WSD-H", WSD),
            ("WSD-U", WSD),
            ("GPS-A", GPSA),
            ("GPS", GPS),
            ("Triest", Triest),
            ("ThinkD", ThinkD),
            ("WRS", WRS),
        ],
    )
    def test_known_names(self, name, cls):
        sampler = make_sampler(name, "triangle", 20, rng=0)
        assert isinstance(sampler, cls)

    def test_wsd_l_needs_policy(self):
        with pytest.raises(ConfigurationError):
            make_sampler("WSD-L", "triangle", 20)

    def test_wsd_l_with_policy(self):
        sampler = make_sampler(
            "WSD-L", "triangle", 20, policy=dummy_policy(), rng=0
        )
        assert isinstance(sampler, WSD)

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_sampler("MAGIC", "triangle", 20)

    def test_case_insensitive(self):
        assert isinstance(make_sampler("wsd-h", "triangle", 20), WSD)

    def test_algorithm_lists(self):
        assert set(DYNAMIC_ALGORITHMS) <= set(ALGORITHMS)
        assert "GPS" in ALGORITHMS and "GPS" not in DYNAMIC_ALGORITHMS

    def test_training_dataset_lookup(self):
        assert training_dataset_for("cit-PT") == "cit-HE"
        assert training_dataset_for("synthetic") == "synthetic-train"
        with pytest.raises(ConfigurationError):
            training_dataset_for("unknown")


class TestGroundTruth:
    def test_final_matches_exact(self, workload):
        stream, truth = workload
        assert truth.final_truth == ExactCounter(
            "triangle"
        ).process_stream(stream)

    def test_checkpoint_count(self, workload):
        stream, truth = workload
        assert 10 <= len(truth.checkpoints) <= 12

    def test_invalid_checkpoints(self, workload):
        stream, _ = workload
        with pytest.raises(ConfigurationError):
            compute_ground_truth(stream, "triangle", 0)


class TestRunSamplerTrial:
    def test_estimates_align_with_checkpoints(self, workload):
        stream, truth = workload
        sampler = make_sampler("ThinkD", "triangle", 40, rng=1)
        result = run_sampler_trial(sampler, stream, truth)
        assert len(result.estimates) == len(truth.checkpoints)
        assert result.seconds > 0.0
        assert result.final_truth == truth.final_truth


class TestRunAlgorithm:
    def test_aggregates_trials(self, workload):
        stream, truth = workload
        result = run_algorithm(
            "ThinkD", stream, truth, "triangle", 40, trials=4, seed=0
        )
        assert len(result.ares) == 4
        assert len(result.mares) == 4
        assert result.mean_are >= 0.0
        assert result.std_are >= 0.0

    def test_trials_differ(self, workload):
        stream, truth = workload
        result = run_algorithm(
            "Triest", stream, truth, "triangle", 30, trials=4, seed=0
        )
        assert len(set(result.ares)) > 1

    def test_deterministic_given_seed(self, workload):
        stream, truth = workload
        a = run_algorithm(
            "ThinkD", stream, truth, "triangle", 40, trials=2, seed=5
        )
        b = run_algorithm(
            "ThinkD", stream, truth, "triangle", 40, trials=2, seed=5
        )
        assert a.ares == b.ares

    def test_zero_truth_rejected(self):
        from repro.experiments.runner import GroundTruthTrace

        trace = GroundTruthTrace((1,), (0,))
        with pytest.raises(ConfigurationError):
            run_algorithm(
                "ThinkD",
                light_deletion_stream([(0, 1)], beta_l=0.0, rng=0),
                trace,
                "triangle",
                8,
                trials=1,
            )


class TestShardedRuns:
    def test_partition_run_matches_handbuilt_executor(self, workload):
        """The runner's sharded path must reproduce, seed for seed, a
        hand-built executor: same per-shard budget split (M // N), same
        SeedSequence-spawned shard generators, same merge. Catches any
        wiring regression (dropped rescale, identical shard seeds,
        wrong budget) exactly rather than through a statistical
        bound."""
        from repro.experiments.runner import make_sampler
        from repro.streams.executor import ShardedStreamExecutor
        from repro.utils.rng import derive_seed, spawn_generators

        stream, truth = workload
        result = run_algorithm(
            "WSD-H", stream, truth, "triangle", 40, trials=1, seed=0,
            shards=4, shard_mode="partition",
        )
        shard_rngs = spawn_generators(derive_seed(0, "WSD-H-trial-0"), 4)
        executor = ShardedStreamExecutor(
            lambda i: make_sampler(
                "WSD-H", "triangle", 10, rng=shard_rngs[i],
            ),
            4,
        )
        for event in stream:
            executor.process(event)
        from repro.estimators.metrics import absolute_relative_error

        expected_are = absolute_relative_error(
            executor.estimate, truth.final_truth
        )
        assert result.ares == [pytest.approx(expected_are)]

    def test_broadcast_mode_runs(self, workload):
        stream, truth = workload
        result = run_algorithm(
            "ThinkD", stream, truth, "triangle", 40, trials=2, seed=0,
            shards=4, shard_mode="broadcast",
        )
        assert len(result.ares) == 2
        # Trials with distinct seeds must not collapse to one value.
        assert len(set(result.ares)) > 1

    def test_shard_replicas_seeded_independently(self, workload):
        from repro.experiments.runner import make_trial_sampler
        from repro.utils.rng import RngFactory

        stream, _ = workload
        executor = make_trial_sampler(
            "WSD-H", "triangle", 160, RngFactory(0), 0,
            shards=4, shard_mode="broadcast",
        )
        executor.process_stream(stream)
        partials = executor.shard_estimates()
        # Identically-seeded replicas would all report the same number,
        # silently losing the variance reduction broadcast exists for.
        assert len(set(partials)) > 1

    def test_make_trial_sampler_splits_partition_budget(self):
        from repro.experiments.runner import make_trial_sampler
        from repro.utils.rng import RngFactory

        executor = make_trial_sampler(
            "WSD-H", "triangle", 40, RngFactory(0), 0,
            shards=4, shard_mode="partition",
        )
        assert executor.num_shards == 4
        assert all(shard.budget == 10 for shard in executor.shards)
        # Broadcast replicas each keep the full budget.
        executor = make_trial_sampler(
            "WSD-H", "triangle", 40, RngFactory(0), 0,
            shards=4, shard_mode="broadcast",
        )
        assert all(shard.budget == 40 for shard in executor.shards)

    def test_partition_budget_floor_is_pattern_size(self):
        from repro.experiments.runner import make_trial_sampler
        from repro.utils.rng import RngFactory

        executor = make_trial_sampler(
            "WSD-H", "4-clique", 8, RngFactory(0), 0,
            shards=4, shard_mode="partition",
        )
        # 8 // 4 = 2 < |H| = 6 → floored at 6 so estimators stay defined.
        assert all(shard.budget == 6 for shard in executor.shards)

    def test_sharded_config_validates(self):
        config = ExperimentConfig(shards=0)
        with pytest.raises(ConfigurationError):
            config.validate()
        config = ExperimentConfig(shards=2, shard_mode="scatter")
        with pytest.raises(ConfigurationError):
            config.validate()
        config = ExperimentConfig(shards=2, executor_backend="threads")
        with pytest.raises(ConfigurationError):
            config.validate()

    @pytest.mark.parametrize("shard_mode", ["partition", "broadcast"])
    def test_process_backend_matches_serial_exactly(self, workload, shard_mode):
        """executor_backend='process' is a deployment choice, not a
        statistical one: the runner's aggregated metrics must equal the
        serial backend's bit for bit under the same seed."""
        stream, truth = workload
        serial = run_algorithm(
            "WSD-H", stream, truth, "triangle", 40, trials=2, seed=3,
            shards=2, shard_mode=shard_mode, executor_backend="serial",
        )
        process = run_algorithm(
            "WSD-H", stream, truth, "triangle", 40, trials=2, seed=3,
            shards=2, shard_mode=shard_mode, executor_backend="process",
        )
        assert process.ares == serial.ares
        assert process.mares == serial.mares

    def test_process_backend_trial_closes_executor(self, workload):
        from repro.experiments.runner import make_trial_sampler, run_sampler_trial
        from repro.utils.rng import RngFactory

        stream, truth = workload
        executor = make_trial_sampler(
            "WSD-H", "triangle", 40, RngFactory(0), 0,
            shards=2, shard_mode="partition", executor_backend="process",
        )
        run_sampler_trial(executor, stream, truth)
        # Workers are gone; the harvested replicas answer serially.
        assert executor._workers is None
        assert executor.time == len(stream)


class TestRunCell:
    def test_runs_multiple_algorithms(self):
        config = ExperimentConfig(
            dataset="cit-HE", scenario=LIGHT, dataset_scale=0.4,
            trials=2, checkpoints=5, seed=0,
        )
        results = run_cell(config, ("WSD-H", "ThinkD"))
        assert set(results) == {"WSD-H", "ThinkD"}

    def test_sharded_cell_runs(self):
        config = ExperimentConfig(
            dataset="cit-HE", scenario=LIGHT, dataset_scale=0.4,
            trials=2, checkpoints=5, seed=0, shards=4,
        )
        results = run_cell(config, ("WSD-H",))
        assert results["WSD-H"].mean_are >= 0.0

    def test_wsd_l_with_policy(self):
        config = ExperimentConfig(
            dataset="cit-HE", scenario=LIGHT, dataset_scale=0.4,
            trials=2, checkpoints=5, seed=0,
        )
        results = run_cell(config, ("WSD-L",), policy=dummy_policy())
        assert results["WSD-L"].mean_are >= 0.0


class TestPolicyStore:
    def test_trains_and_caches(self):
        store = PolicyStore(iterations=20, num_streams=1, dataset_scale=0.4)
        first = store.get("cit-HE", "triangle", LIGHT)
        second = store.get("cit-HE", "triangle", LIGHT)
        assert first is second
        assert store.training_seconds  # recorded

    def test_disk_cache_round_trip(self, tmp_path):
        store = PolicyStore(
            iterations=15, num_streams=1, dataset_scale=0.4,
            cache_dir=tmp_path,
        )
        policy = store.get("cit-HE", "triangle", LIGHT)
        fresh_store = PolicyStore(
            iterations=15, num_streams=1, dataset_scale=0.4,
            cache_dir=tmp_path,
        )
        loaded = fresh_store.get("cit-HE", "triangle", LIGHT)
        assert np.array_equal(loaded.weights, policy.weights)

    def test_aggregation_keys_distinct(self):
        store = PolicyStore(iterations=10, num_streams=1, dataset_scale=0.4)
        max_policy = store.get(
            "cit-HE", "triangle", LIGHT, temporal_aggregation="max"
        )
        avg_policy = store.get(
            "cit-HE", "triangle", LIGHT, temporal_aggregation="avg"
        )
        assert max_policy is not avg_policy
