"""Tests for the report compiler."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.report import ARTEFACT_ORDER, compile_report, main


@pytest.fixture
def results_dir(tmp_path):
    (tmp_path / "table03_triangles_massive.txt").write_text("T3 CONTENT")
    (tmp_path / "fig5_beta_sweep.txt").write_text("F5 CONTENT")
    (tmp_path / "custom_extra.txt").write_text("EXTRA CONTENT")
    return tmp_path


class TestCompileReport:
    def test_includes_present_artefacts(self, results_dir):
        report = compile_report(results_dir)
        assert "T3 CONTENT" in report
        assert "F5 CONTENT" in report
        assert "Table III" in report

    def test_lists_missing(self, results_dir):
        report = compile_report(results_dir)
        assert "Missing artefacts" in report
        assert "table02_wedges_massive" in report

    def test_extras_appended(self, results_dir):
        report = compile_report(results_dir)
        assert "EXTRA CONTENT" in report
        assert report.index("EXTRA CONTENT") > report.index("F5 CONTENT")

    def test_order_follows_canonical(self, results_dir):
        report = compile_report(results_dir)
        assert report.index("T3 CONTENT") < report.index("F5 CONTENT")

    def test_missing_dir_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            compile_report(tmp_path / "nope")

    def test_artefact_order_complete(self):
        # Every bench in benchmarks/ should have a slot in the order.
        assert len(ARTEFACT_ORDER) >= 24


class TestMain:
    def test_writes_file(self, results_dir, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main([str(results_dir), str(out)]) == 0
        assert "T3 CONTENT" in out.read_text()

    def test_prints_to_stdout(self, results_dir, capsys):
        assert main([str(results_dir)]) == 0
        assert "T3 CONTENT" in capsys.readouterr().out

    def test_usage_error(self, capsys):
        assert main([]) == 2

    def test_real_results_if_available(self):
        from pathlib import Path

        results = Path(__file__).parents[2] / "benchmarks" / "results"
        if not results.is_dir():
            pytest.skip("benchmarks not yet run")
        report = compile_report(results)
        assert "Table III" in report
