"""Tests for experiment configuration."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import (
    INSERTION_ONLY,
    LIGHT,
    MASSIVE,
    ExperimentConfig,
    ScenarioConfig,
)
from repro.streams.validate import validate_stream


class TestScenarioConfig:
    def test_defaults(self):
        assert MASSIVE.effective_beta == 0.8
        assert LIGHT.effective_beta == 0.2

    def test_explicit_beta(self):
        assert ScenarioConfig("light", beta=0.4).effective_beta == 0.4

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig("weird").validate()

    def test_negative_alpha_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig("massive", alpha=-1.0).validate()

    def test_build_insertion_only(self):
        import numpy as np

        stream = INSERTION_ONLY.build(
            [(0, 1), (1, 2)], np.random.default_rng(0)
        )
        assert stream.num_deletions == 0

    def test_build_massive_feasible(self):
        import numpy as np
        from repro.graph.generators import forest_fire

        edges = forest_fire(100, p=0.4, rng=0)
        stream = MASSIVE.build(edges, np.random.default_rng(1))
        validate_stream(stream)

    def test_build_light_feasible(self):
        import numpy as np
        from repro.graph.generators import forest_fire

        edges = forest_fire(100, p=0.4, rng=0)
        stream = LIGHT.build(edges, np.random.default_rng(1))
        validate_stream(stream)


class TestExperimentConfig:
    def test_defaults_valid(self):
        ExperimentConfig().validate()

    def test_invalid_budget_fraction(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(budget_fraction=0.0).validate()

    def test_invalid_trials(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(trials=0).validate()

    def test_executor_backend_validated(self):
        ExperimentConfig(shards=2, executor_backend="process").validate()
        ExperimentConfig(executor_backend="serial").validate()
        with pytest.raises(ConfigurationError):
            ExperimentConfig(executor_backend="threads").validate()

    def test_process_backend_requires_sharding(self):
        """shards=1 runs a bare sampler, so a requested process backend
        would be silently ignored — refused instead."""
        with pytest.raises(ConfigurationError):
            ExperimentConfig(shards=1, executor_backend="process").validate()

    def test_with_changes(self):
        config = ExperimentConfig(dataset="cit-PT")
        changed = config.with_changes(dataset="com-YT", trials=3)
        assert changed.dataset == "com-YT"
        assert changed.trials == 3
        assert config.dataset == "cit-PT"  # original untouched

    def test_build_stream_deterministic(self):
        config = ExperimentConfig(
            dataset="cit-HE", scenario=LIGHT, dataset_scale=0.4, seed=3
        )
        assert config.build_stream() == config.build_stream()

    def test_seed_changes_stream(self):
        a = ExperimentConfig(dataset="cit-HE", dataset_scale=0.4, seed=0)
        b = ExperimentConfig(dataset="cit-HE", dataset_scale=0.4, seed=1)
        assert a.build_stream() != b.build_stream()

    def test_ordering_changes_stream(self):
        natural = ExperimentConfig(
            dataset="cit-HE", dataset_scale=0.4, ordering="natural"
        )
        uar = ExperimentConfig(
            dataset="cit-HE", dataset_scale=0.4, ordering="uar"
        )
        assert natural.build_stream() != uar.build_stream()

    def test_effective_budget_fraction(self):
        config = ExperimentConfig(
            dataset="cit-HE", dataset_scale=0.4, budget_fraction=0.1
        )
        stream = config.build_stream()
        assert config.effective_budget(stream) == max(
            8, int(stream.num_insertions * 0.1)
        )

    def test_effective_budget_explicit(self):
        config = ExperimentConfig(dataset="cit-HE", budget=123)
        stream = config.build_stream()
        assert config.effective_budget(stream) == 123
