"""Tests for the seeded RNG tree."""

import numpy as np
import pytest

from repro.utils.rng import (
    RngFactory,
    derive_seed,
    ensure_rng,
    spawn_generators,
)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "x") == derive_seed(42, "x")

    def test_name_sensitivity(self):
        assert derive_seed(42, "x") != derive_seed(42, "y")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_63_bit_range(self):
        for name in ("a", "b", "c", "long-name-with-parts:3"):
            seed = derive_seed(123, name)
            assert 0 <= seed < 2**63

    def test_no_collision_prefix_ambiguity(self):
        # "1" + "23" vs "12" + "3" must not collide through separator.
        assert derive_seed(1, "23") != derive_seed(12, "3")


class TestEnsureRng:
    def test_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_int_seed(self):
        a = ensure_rng(5)
        b = ensure_rng(5)
        assert a.random() == b.random()

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)


class TestRngFactory:
    def test_generator_stability(self):
        factory = RngFactory(7)
        a = factory.generator("stream")
        b = factory.generator("stream")
        assert a.random() == b.random()

    def test_order_independence(self):
        """The generator for a name must not depend on which other names
        were requested before it."""
        f1 = RngFactory(7)
        f1.generator("first")
        value1 = f1.generator("target").random()
        f2 = RngFactory(7)
        value2 = f2.generator("target").random()
        assert value1 == value2

    def test_names_independent(self):
        factory = RngFactory(7)
        assert (
            factory.generator("a").random() != factory.generator("b").random()
        )

    def test_child_factories_independent(self):
        factory = RngFactory(7)
        a = factory.child("trial-1").generator("x")
        b = factory.child("trial-2").generator("x")
        assert a.random() != b.random()

    def test_child_differs_from_parent(self):
        factory = RngFactory(7)
        child = factory.child("x")
        assert child.seed != factory.seed

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RngFactory("seed")  # type: ignore[arg-type]


class TestSpawnGenerators:
    def test_deterministic(self):
        a = [g.random() for g in spawn_generators(42, 4)]
        b = [g.random() for g in spawn_generators(42, 4)]
        assert a == b

    def test_children_independent(self):
        draws = [g.random() for g in spawn_generators(42, 8)]
        assert len(set(draws)) == 8

    def test_root_seed_matters(self):
        a = [g.random() for g in spawn_generators(1, 3)]
        b = [g.random() for g in spawn_generators(2, 3)]
        assert a != b

    def test_prefix_stability(self):
        """Spawning more children never changes the earlier ones — a
        sharded run can grow its replica count without reseeding the
        existing shards."""
        small = [g.random() for g in spawn_generators(7, 2)]
        large = [g.random() for g in spawn_generators(7, 5)]
        assert large[:2] == small

    def test_bad_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, 0)
