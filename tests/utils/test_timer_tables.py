"""Tests for timing utilities and table rendering."""

import time

import pytest

from repro.utils.tables import format_sections, format_table
from repro.utils.timer import Stopwatch, Timer


class TestStopwatch:
    def test_accumulates(self):
        sw = Stopwatch()
        with sw:
            time.sleep(0.01)
        first = sw.elapsed
        with sw:
            time.sleep(0.01)
        assert sw.elapsed > first >= 0.01

    def test_double_start_raises(self):
        sw = Stopwatch()
        sw.start()
        with pytest.raises(RuntimeError):
            sw.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        sw = Stopwatch()
        with sw:
            pass
        sw.reset()
        assert sw.elapsed == 0.0
        assert not sw.running

    def test_running_flag(self):
        sw = Stopwatch()
        assert not sw.running
        sw.start()
        assert sw.running
        sw.stop()
        assert not sw.running


class TestTimer:
    def test_records_duration(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.seconds >= 0.01

    def test_reusable(self):
        timer = Timer()
        with timer:
            pass
        first = timer.seconds
        with timer:
            time.sleep(0.01)
        assert timer.seconds >= 0.01
        assert timer.seconds != first


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["name", "v"], [["a", 1.23456], ["bb", 2.0]])
        lines = text.splitlines()
        assert lines[0].endswith("v")
        assert "1.235" in text  # default precision 3
        assert "2.000" in text

    def test_precision(self):
        text = format_table(["v"], [[1.23456]], precision=1)
        assert "1.2" in text

    def test_title_and_rule(self):
        text = format_table(["v"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"
        assert set(text.splitlines()[1]) == {"="}

    def test_non_numeric_cells(self):
        text = format_table(["a", "b"], [["xyz", 42]])
        assert "xyz" in text and "42" in text

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_rectangular_output(self):
        text = format_table(
            ["col", "value"], [["a", 1.0], ["long-name", 123456.789]]
        )
        widths = {len(line) for line in text.splitlines()}
        assert len(widths) == 1


class TestFormatSections:
    def test_sections_stacked(self):
        text = format_sections(
            ["g", "x"],
            [("ARE", [["d1", 1.0]]), ("Time", [["d1", 0.5]])],
            title="T",
        )
        assert text.index("ARE") < text.index("Time")
        assert text.splitlines()[0] == "T"

    def test_empty_sections_ok(self):
        text = format_sections(["g"], [])
        assert text == ""

    def test_single_section_no_trailing_blank(self):
        text = format_sections(["g"], [("S", [["x"]])])
        assert not text.endswith("\n\n")
