"""Package-level tests: exports, errors hierarchy, metadata."""

import importlib

import pytest

import repro
from repro import errors


class TestExports:
    def test_version_semver_like(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_all_names_exist(self):
        for name in repro.__all__:
            assert hasattr(repro, name)

    @pytest.mark.parametrize(
        "module",
        [
            "repro.graph",
            "repro.streams",
            "repro.patterns",
            "repro.samplers",
            "repro.weights",
            "repro.rl",
            "repro.estimators",
            "repro.experiments",
            "repro.utils",
        ],
    )
    def test_subpackage_all_resolvable(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    def test_py_typed_marker_shipped(self):
        from pathlib import Path

        marker = Path(repro.__file__).parent / "py.typed"
        assert marker.exists()


class TestErrorHierarchy:
    ALL_ERRORS = [
        errors.GraphError,
        errors.EdgeExistsError,
        errors.EdgeNotFoundError,
        errors.SelfLoopError,
        errors.StreamError,
        errors.InfeasibleEventError,
        errors.StreamFormatError,
        errors.SamplerError,
        errors.ReservoirFullError,
        errors.ConfigurationError,
        errors.PolicyError,
        errors.DatasetError,
    ]

    @pytest.mark.parametrize("exc", ALL_ERRORS)
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_graph_errors_grouped(self):
        for exc in (
            errors.EdgeExistsError,
            errors.EdgeNotFoundError,
            errors.SelfLoopError,
        ):
            assert issubclass(exc, errors.GraphError)

    def test_stream_errors_grouped(self):
        for exc in (errors.InfeasibleEventError, errors.StreamFormatError):
            assert issubclass(exc, errors.StreamError)

    def test_catching_base_class_works(self):
        from repro.graph.adjacency import DynamicAdjacency

        graph = DynamicAdjacency()
        with pytest.raises(errors.ReproError):
            graph.remove_edge(1, 2)
