"""Unit tests for supervised shard recovery (policy + engine).

The contracts under test: error classification is type-driven through
the RetryableError mixin, backoff delays are a pure deterministic
function of (policy, seed, fault sequence), the per-shard failure
budget escalates at an exact point, and escalation is always the typed
ShardUnrecoverableError — never a bare give-up.
"""

import random

import pytest

from repro.errors import (
    ConfigurationError,
    OperationTimeoutError,
    PeerLostError,
    ServiceError,
    ServiceOverloadedError,
    ShardUnrecoverableError,
    WorkerCrashError,
)
from repro.streams.supervisor import (
    DEFAULT_RECOVERY_POLICY,
    RecoveryPolicy,
    ShardSupervisor,
)


class TestRecoveryPolicy:
    def test_defaults_validate(self):
        DEFAULT_RECOVERY_POLICY.validate()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("max_attempts", 0),
            ("backoff_base", -0.1),
            ("backoff_factor", 0.5),
            ("backoff_max", -1.0),
            ("jitter_fraction", 1.0),
            ("jitter_fraction", -0.1),
            ("failure_budget", 0),
        ],
    )
    def test_bad_knobs_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            RecoveryPolicy(**{field: value}).validate()

    def test_attempt_zero_is_immediate(self):
        policy = RecoveryPolicy()
        assert policy.delay(0, random.Random(0)) == 0.0

    def test_backoff_grows_and_caps(self):
        policy = RecoveryPolicy(
            backoff_base=0.1,
            backoff_factor=2.0,
            backoff_max=0.5,
            jitter_fraction=0.0,
        )
        rng = random.Random(0)
        delays = [policy.delay(k, rng) for k in range(1, 6)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_is_bounded_and_deterministic(self):
        policy = RecoveryPolicy(
            backoff_base=1.0, backoff_max=1.0, jitter_fraction=0.1
        )
        a = [policy.delay(1, random.Random(42)) for _ in range(1)]
        b = [policy.delay(1, random.Random(42)) for _ in range(1)]
        assert a == b
        for _ in range(50):
            delay = policy.delay(1, random.Random(random.random()))
            assert 0.9 <= delay <= 1.1

    def test_dict_roundtrip(self):
        policy = RecoveryPolicy(max_attempts=3, failure_budget=4, seed=9)
        assert RecoveryPolicy.from_dict(policy.to_dict()) == policy

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            RecoveryPolicy.from_dict({"max_attempts": 2, "retries": 7})


def make_supervisor(policy=None, shards=3, name="t"):
    """A supervisor whose sleeps are recorded, not slept."""
    slept: list[float] = []
    policy = policy or RecoveryPolicy(backoff_base=0.01, jitter_fraction=0.0)
    supervisor = policy.build_supervisor(shards, name=name, sleep=slept.append)
    return supervisor, slept


class TestClassification:
    @pytest.mark.parametrize(
        "exc",
        [
            WorkerCrashError(1, "died"),
            PeerLostError("gone"),
            OperationTimeoutError("hung"),
            ServiceOverloadedError("full"),
        ],
    )
    def test_retryable(self, exc):
        assert ShardSupervisor.is_retryable(exc)

    @pytest.mark.parametrize(
        "exc",
        [
            ServiceError("logic"),
            ConfigurationError("bad"),
            ShardUnrecoverableError(0, "done"),
            ValueError("unrelated"),
        ],
    )
    def test_not_retryable(self, exc):
        assert not ShardSupervisor.is_retryable(exc)


class TestFailureBudget:
    def test_escalates_past_the_budget(self):
        policy = RecoveryPolicy(failure_budget=2, backoff_base=0.0)
        supervisor, _ = make_supervisor(policy)
        supervisor.record_failure(WorkerCrashError(1, "x"))
        supervisor.record_failure(WorkerCrashError(1, "x"))
        with pytest.raises(ShardUnrecoverableError) as excinfo:
            supervisor.record_failure(WorkerCrashError(1, "x"))
        assert excinfo.value.shard_index == 1
        assert excinfo.value.failures == 3
        # The other shards' budgets are untouched.
        supervisor.record_failure(WorkerCrashError(0, "y"))

    def test_anonymous_failures_never_escalate_a_shard(self):
        policy = RecoveryPolicy(failure_budget=1)
        supervisor, _ = make_supervisor(policy)
        for _ in range(5):
            supervisor.record_failure(PeerLostError("no shard"))
        assert supervisor.stats()["anonymous_failures"] == 5
        assert supervisor.stats()["failures"] == [0, 0, 0]


class TestRecover:
    def test_single_attempt_recovery(self):
        supervisor, slept = make_supervisor()
        calls = []
        supervisor.recover(WorkerCrashError(2, "boom"), calls.append)
        assert len(calls) == 1
        assert calls[0].shard_index == 2
        assert supervisor.recoveries == 1
        assert slept == [0.0]  # attempt 0 is immediate

    def test_cascade_continues_the_incident(self):
        supervisor, slept = make_supervisor()
        seen = []

        def attempt(error):
            seen.append(error.shard_index)
            if len(seen) < 3:  # replay discovers another dead shard
                raise WorkerCrashError(len(seen), "cascade")

        supervisor.recover(WorkerCrashError(0, "first"), attempt)
        assert seen == [0, 1, 2]
        assert supervisor.recoveries == 1  # one incident, one recovery
        assert len(slept) == 3 and slept[1] > 0.0

    def test_non_retryable_error_propagates_untouched(self):
        supervisor, _ = make_supervisor()
        fatal = ServiceError("replay did not converge")
        with pytest.raises(ServiceError) as excinfo:
            supervisor.recover(fatal, lambda e: None)
        assert excinfo.value is fatal

    def test_attempt_limit_escalates(self):
        policy = RecoveryPolicy(
            max_attempts=3, backoff_base=0.0, failure_budget=100
        )
        supervisor, _ = make_supervisor(policy)

        def attempt(error):
            raise WorkerCrashError(1, "still dead")

        with pytest.raises(ShardUnrecoverableError) as excinfo:
            supervisor.recover(WorkerCrashError(1, "boom"), attempt)
        assert excinfo.value.shard_index == 1
        assert "3 attempts" in str(excinfo.value)

    def test_delay_sequence_is_deterministic(self):
        policy = RecoveryPolicy(
            max_attempts=4, backoff_base=0.01, failure_budget=100, seed=5
        )

        def burn(supervisor, slept):
            def attempt(error):
                raise WorkerCrashError(0, "dead")

            with pytest.raises(ShardUnrecoverableError):
                supervisor.recover(WorkerCrashError(0, "x"), attempt)
            return list(slept)

        first = burn(*make_supervisor(policy, name="same"))
        second = burn(*make_supervisor(policy, name="same"))
        other = burn(*make_supervisor(policy, name="different"))
        assert first == second
        assert first != other  # the name salts the jitter stream


class TestRun:
    def test_retries_until_success(self):
        supervisor, slept = make_supervisor()
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise PeerLostError("rebooting")
            return "up"

        assert supervisor.run(flaky, what="leasing") == "up"
        assert len(attempts) == 3
        assert len(slept) == 2

    def test_fatal_errors_do_not_retry(self):
        supervisor, _ = make_supervisor()
        attempts = []

        def broken():
            attempts.append(1)
            raise ConfigurationError("never valid")

        with pytest.raises(ConfigurationError):
            supervisor.run(broken)
        assert len(attempts) == 1

    def test_exhaustion_escalates_with_context(self):
        policy = RecoveryPolicy(
            max_attempts=2, backoff_base=0.0, failure_budget=100
        )
        supervisor, _ = make_supervisor(policy)

        def dead():
            raise WorkerCrashError(2, "host down")

        with pytest.raises(ShardUnrecoverableError, match="leasing"):
            supervisor.run(dead, what="leasing")

    def test_stats_ledger(self):
        supervisor, _ = make_supervisor()
        supervisor.recover(WorkerCrashError(1, "x"), lambda e: None)
        stats = supervisor.stats()
        assert stats["recoveries"] == 1
        assert stats["failures"] == [0, 1, 0]
        assert stats["incidents"] == 1
