"""The seeded protocol fuzzer: determinism, coverage, and the contract.

A small seeded matrix runs here (the CI ``fuzz`` job soaks hundreds of
seeds); what this file pins is the machinery itself — plans rebuild
bit-identically from their seed, every mutation class is reachable,
and a run against live fronts ends with zero contract violations.
"""

import pytest

from repro.errors import ConfigurationError
from repro.streams.fuzz import (
    CLEAN_EVERY,
    MUTATIONS,
    FuzzHarness,
    FuzzPlan,
    run_fuzz,
)


class TestPlans:
    def test_plan_is_deterministic_from_seed(self):
        for seed in range(30):
            first = FuzzPlan.from_seed(seed)
            second = FuzzPlan.from_seed(seed)
            assert first == second
            assert first.wire_bytes() == second.wire_bytes()

    def test_clean_cells_land_on_schedule(self):
        for seed in range(3 * CLEAN_EVERY):
            plan = FuzzPlan.from_seed(seed)
            assert (plan.mutation == "clean") == (seed % CLEAN_EVERY == 0)

    def test_every_mutation_class_is_reachable(self):
        seen = {FuzzPlan.from_seed(seed).mutation for seed in range(400)}
        assert set(MUTATIONS) <= seen

    def test_mutated_bytes_differ_from_clean_script(self):
        plan = FuzzPlan.from_seed(3)
        assert plan.mutation != "clean"
        assert plan.wire_bytes() != b"".join(plan.script())

    def test_unknown_target_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fuzz target"):
            FuzzPlan.from_seed(1, targets=("service", "typo"))


class TestRun:
    @pytest.mark.slow
    def test_small_matrix_honours_the_contract(self):
        report = run_fuzz(range(24))
        assert report.cases and len(report.cases) == 24
        assert report.thread_exceptions == []
        assert report.failures == [], [
            (case.seed, case.mutation, case.outcome, case.detail)
            for case in report.failures
        ]
        # clean cells were actually exercised and accepted
        clean = [c for c in report.cases if c.mutation == "clean"]
        assert clean and all(c.outcome == "accepted" for c in clean)

    @pytest.mark.slow
    def test_single_target_run(self):
        with FuzzHarness() as harness:
            report = run_fuzz(
                range(101, 109), targets=("host",), harness=harness
            )
        assert all(case.target == "host" for case in report.cases)
        assert report.ok, report.to_dict()

    def test_report_shape(self):
        report = run_fuzz(range(1, 4), targets=("service",))
        payload = report.to_dict()
        assert payload["cases"] == 3
        assert set(payload) >= {
            "ok",
            "outcomes",
            "mutations",
            "failures",
            "thread_exceptions",
        }
