"""Tests for the shard-worker protocol layer (streams/workers.py)."""

import time

import pytest

from repro.errors import ConfigurationError, WorkerCrashError
from repro.graph.stream import EdgeEvent
from repro.samplers import GPS, WSD, restore_sampler, sampler_state_dict
from repro.streams.workers import ShardWorker, decode_events, encode_events
from repro.weights.base import WeightFunction
from repro.weights.heuristic import GPSHeuristicWeight


def fresh_wsd(seed=3, budget=40):
    return WSD("triangle", budget, GPSHeuristicWeight(), rng=seed)


def simple_events(n=30):
    events = [EdgeEvent.insertion(i, i + 1) for i in range(n)]
    events.append(EdgeEvent.deletion(0, 1))
    return events


class TestEventCodec:
    def test_round_trip(self):
        events = simple_events()
        assert decode_events(encode_events(events)) == events

    def test_ops_preserved(self):
        events = [EdgeEvent.insertion(1, 2), EdgeEvent.deletion(1, 2)]
        decoded = decode_events(encode_events(events))
        assert decoded[0].is_insertion and decoded[1].is_deletion

    def test_string_vertices(self):
        events = [EdgeEvent.insertion("alice", "bob")]
        assert decode_events(encode_events(events)) == events

    def test_payload_is_plain_tuples(self):
        payload = encode_events([EdgeEvent.insertion(4, 2)])
        # Canonical edge (2, 4); insertion flag leads.
        assert payload == [(True, 2, 4)]


class TestShardWorker:
    def test_batch_sync_reflects_all_events(self):
        reference = fresh_wsd()
        worker = ShardWorker(0, sampler_state_dict(reference), GPSHeuristicWeight())
        try:
            events = simple_events()
            local = fresh_wsd()
            local.process_batch(events)
            worker.send_batch(encode_events(events))
            _, _, shard_time, shard_estimate = worker.request("sync")
            assert shard_time == local.time == len(events)
            assert shard_estimate == local.estimate
        finally:
            worker.kill()

    def test_snapshot_is_restorable_continuation(self):
        reference = fresh_wsd(seed=9)
        events = simple_events(40)
        worker = ShardWorker(0, sampler_state_dict(reference), GPSHeuristicWeight())
        try:
            worker.send_batch(encode_events(events[:20]))
            worker.request("sync")
            state = worker.request("snapshot")[2]
        finally:
            worker.kill()
        resumed = restore_sampler(state, GPSHeuristicWeight())
        resumed.process_batch(events[20:])
        uninterrupted = fresh_wsd(seed=9)
        uninterrupted.process_batch(events)
        assert resumed.estimate == uninterrupted.estimate

    def test_stop_returns_final_state(self):
        worker = ShardWorker(0, sampler_state_dict(fresh_wsd()), GPSHeuristicWeight())
        events = simple_events()
        worker.send_batch(encode_events(events))
        state = worker.stop()
        local = fresh_wsd()
        local.process_batch(events)
        assert restore_sampler(state, GPSHeuristicWeight()).estimate == local.estimate
        # The process exits cleanly after a stop.
        deadline = time.time() + 5.0
        while worker.is_alive() and time.time() < deadline:
            time.sleep(0.05)
        assert not worker.is_alive()

    def test_worker_failure_surfaces_with_shard_index(self):
        """A sampler exception inside the worker reaches the parent as
        WorkerCrashError naming the shard and the original error."""
        gps = GPS("triangle", 20, GPSHeuristicWeight(), rng=0)
        worker = ShardWorker(3, sampler_state_dict(gps), GPSHeuristicWeight())
        try:
            worker.send_batch(
                encode_events(simple_events())  # ends with a deletion
            )
            with pytest.raises(WorkerCrashError) as excinfo:
                worker.request("sync")
            assert excinfo.value.shard_index == 3
            assert "SamplerError" in str(excinfo.value)
            # The handle stays failed: later traffic raises immediately.
            with pytest.raises(WorkerCrashError):
                worker.send_batch([(True, 1, 2)])
        finally:
            worker.kill()

    def test_killed_worker_detected(self):
        worker = ShardWorker(1, sampler_state_dict(fresh_wsd()), GPSHeuristicWeight())
        worker.process.kill()
        worker.process.join(5.0)
        with pytest.raises(WorkerCrashError):
            worker.request("sync")

    def test_unpicklable_weight_fn_rejected_up_front(self):
        """Spawn-safety is enforced in the parent for every start
        method: an unpicklable weight function fails fast with a clear
        error instead of failing only under spawn."""

        class LocalWeight(WeightFunction):  # local class: not picklable
            needs_context = False

            def __call__(self, context):
                return 1.0

            def light_weight(self, num_instances, graph, u, v):
                return 1.0

        sampler = WSD("triangle", 20, LocalWeight(), rng=0)
        with pytest.raises(ConfigurationError):
            ShardWorker(0, sampler_state_dict(sampler), sampler.weight_fn)

    def test_bad_queue_depth_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardWorker(
                0, sampler_state_dict(fresh_wsd()), GPSHeuristicWeight(),
                queue_depth=0,
            )
