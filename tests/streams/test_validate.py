"""Tests for stream feasibility validation."""

import pytest

from repro.errors import InfeasibleEventError
from repro.graph.stream import EdgeEvent, EdgeStream
from repro.streams.validate import is_feasible, validate_stream


def stream(*events):
    return EdgeStream(events)


class TestValidateStream:
    def test_empty_ok(self):
        validate_stream(stream())

    def test_insert_delete_ok(self):
        validate_stream(
            stream(EdgeEvent.insertion(1, 2), EdgeEvent.deletion(1, 2))
        )

    def test_reinsertion_after_delete_ok(self):
        validate_stream(
            stream(
                EdgeEvent.insertion(1, 2),
                EdgeEvent.deletion(1, 2),
                EdgeEvent.insertion(1, 2),
            )
        )

    def test_duplicate_insertion_rejected(self):
        with pytest.raises(InfeasibleEventError, match="event 2"):
            validate_stream(
                stream(EdgeEvent.insertion(1, 2), EdgeEvent.insertion(2, 1))
            )

    def test_deletion_of_absent_rejected(self):
        with pytest.raises(InfeasibleEventError, match="event 1"):
            validate_stream(stream(EdgeEvent.deletion(1, 2)))

    def test_double_deletion_rejected(self):
        with pytest.raises(InfeasibleEventError):
            validate_stream(
                stream(
                    EdgeEvent.insertion(1, 2),
                    EdgeEvent.deletion(1, 2),
                    EdgeEvent.deletion(1, 2),
                )
            )


class TestIsFeasible:
    def test_true_case(self):
        assert is_feasible(stream(EdgeEvent.insertion(1, 2)))

    def test_false_case(self):
        assert not is_feasible(stream(EdgeEvent.deletion(1, 2)))
