"""Shared-memory worker transport: zero-pickle event chunks.

The process backend's chunks travel as encoded ``EventBlock`` payloads
through a per-worker shared-memory slot ring. The contracts:

* bit-identical results across transports (``shm`` vs the legacy
  ``queue``) and across input representations (event lists vs blocks);
* chunk/slot boundaries never change results (a block larger than a
  slot is split transparently);
* the crash-restart path (checkpoint snapshot → kill → respawn) works
  unchanged over the shm transport;
* streams whose labels cannot ride an int64 block fall back to the
  queue path per chunk, transparently.
"""

import pytest

from repro.graph.generators import powerlaw_cluster
from repro.graph.stream import EdgeEvent, EventBlock
from repro.samplers import WSD, ThinkD
from repro.streams import ShardedStreamExecutor, build_stream
from repro.streams.workers import ShardWorker
from repro.samplers.checkpoint import sampler_state_dict
from repro.utils.rng import spawn_generators
from repro.weights.heuristic import GPSHeuristicWeight


@pytest.fixture(scope="module")
def stream():
    edges = powerlaw_cluster(150, m=4, triangle_probability=0.6, rng=0)
    return list(build_stream(edges, "light", rng=3))


@pytest.fixture(scope="module")
def block(stream):
    return EventBlock.from_events(stream)


def build_executor(backend, transport="auto", seed=17, shards=2, **kwargs):
    rngs = spawn_generators(seed, shards)
    return ShardedStreamExecutor(
        lambda i: WSD("triangle", 60, GPSHeuristicWeight(), rng=rngs[i]),
        shards,
        mode="partition",
        executor_backend=backend,
        transport=transport,
        **kwargs,
    )


class TestTransportParity:
    def test_shm_matches_serial_and_queue(self, stream, block):
        serial = build_executor("serial")
        serial.process_stream(block)
        estimates = {"serial": serial.estimate}
        for transport in ("shm", "queue"):
            for payload in (stream, block):
                with build_executor(
                    "process", transport, chunk_size=64
                ) as executor:
                    executor.process_stream(payload)
                    estimates[f"{transport}/{type(payload).__name__}"] = (
                        executor.estimate
                    )
        assert len(set(estimates.values())) == 1, estimates

    def test_slot_boundaries_do_not_change_results(self, block):
        reference = None
        # chunk_size 16 with the default slot sizing, and a whole-block
        # dispatch that must be split across slots internally.
        for chunk_size in (16, 4096):
            with build_executor(
                "process", "shm", chunk_size=chunk_size
            ) as executor:
                executor.process_stream(block)
                estimate = executor.estimate
            if reference is None:
                reference = estimate
            assert estimate == reference

    def test_oversize_block_is_split_across_slots(self, stream, block):
        # A worker whose slots hold only 8 events must transparently
        # slice a whole-stream block — same result as per-event local
        # processing.
        reference = WSD("triangle", 60, GPSHeuristicWeight(), rng=3)
        worker = ShardWorker(
            0, sampler_state_dict(reference), GPSHeuristicWeight(),
            transport="shm", chunk_hint=8,
        )
        try:
            local = WSD("triangle", 60, GPSHeuristicWeight(), rng=3)
            local.process_batch(stream)
            worker.send_block(block)  # hundreds of events, 8 per slot
            _, _, shard_time, shard_estimate = worker.request("sync")
            assert shard_time == local.time
            assert shard_estimate == local.estimate
        finally:
            worker.kill()

    def test_mixed_label_stream_falls_back_per_chunk(self):
        events = [EdgeEvent.insertion("a", "b"), EdgeEvent.insertion("b", "c"),
                  EdgeEvent.insertion("a", "c"), EdgeEvent.deletion("a", "b")]
        rngs = spawn_generators(5, 2)

        def factory(i):
            return ThinkD("triangle", 30, rng=rngs[i])

        serial = ShardedStreamExecutor(factory, 2, mode="partition")
        serial.process_stream(events)
        rngs = spawn_generators(5, 2)
        with ShardedStreamExecutor(
            factory, 2, mode="partition",
            executor_backend="process", transport="auto",
        ) as proc:
            proc.process_stream(events)
            assert proc.estimate == serial.estimate

    def test_forced_queue_never_allocates_shm(self, stream):
        with build_executor("process", "queue", chunk_size=64) as executor:
            executor.process_stream(stream)
            for worker in executor._workers:
                assert worker._shm is None

    def test_shm_transport_allocates_ring(self, stream):
        with build_executor("process", "shm", chunk_size=64) as executor:
            executor.process_stream(stream)
            for worker in executor._workers:
                assert worker._shm is not None
                assert worker._num_slots > 0


class TestCrashRestartOverShm:
    def test_snapshot_kill_restart_is_bit_identical(self, stream, block):
        serial = build_executor("serial")
        serial.process_stream(block)
        with build_executor(
            "process", "shm", chunk_size=64
        ) as executor:
            executor.process_batch(block[:len(block) // 2])
            executor.snapshot()
            # Kill one worker mid-run and restart it from the snapshot.
            executor._workers[0].process.kill()
            executor._workers[0].process.join(5.0)
            executor.restart_shard(0)
            executor.process_batch(block[len(block) // 2:])
            assert executor.estimate == serial.estimate

    def test_close_harvests_over_shm(self, stream):
        executor = build_executor("process", "shm", chunk_size=64)
        executor.process_stream(stream)
        expected = executor.estimate
        executor.close()
        # Post-close queries answer serially from harvested state, and
        # every slot ring has been released.
        assert executor.estimate == expected
        assert all(w._shm is None for w in (executor._workers or []) or [])


class TestWorkerShmUnit:
    def test_send_block_round_trip(self, stream):
        reference = WSD("triangle", 60, GPSHeuristicWeight(), rng=3)
        worker = ShardWorker(
            0, sampler_state_dict(reference), GPSHeuristicWeight(),
            transport="shm", chunk_hint=32,
        )
        try:
            local = WSD("triangle", 60, GPSHeuristicWeight(), rng=3)
            local.process_batch(stream)
            block = EventBlock.from_events(stream)
            for start in range(0, len(block), 32):
                worker.send_block(block[start:start + 32])
            _, _, shard_time, shard_estimate = worker.request("sync")
            assert shard_time == local.time
            assert shard_estimate == local.estimate
        finally:
            worker.kill()

    def test_slot_ring_released_on_kill(self):
        reference = WSD("triangle", 20, GPSHeuristicWeight(), rng=1)
        worker = ShardWorker(
            0, sampler_state_dict(reference), GPSHeuristicWeight(),
            transport="shm",
        )
        name = worker._shm.name
        worker.kill()
        assert worker._shm is None
        from multiprocessing import shared_memory
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_bad_transport_rejected(self):
        reference = WSD("triangle", 20, GPSHeuristicWeight(), rng=1)
        state = sampler_state_dict(reference)
        with pytest.raises(Exception):
            ShardWorker(0, state, GPSHeuristicWeight(), transport="carrier")
