"""Wire-format tests: framing, versioning, and integrity checks.

The distributed tier's protocol promise is that malformed bytes fail
loudly (:class:`~repro.errors.ProtocolError`) instead of deserialising
garbage: every frame carries a magic, a protocol version, and a
declared length; checkpoint payloads additionally carry a CRC-32. These
tests drive the framing layer directly over socket pairs — no executor,
no host agent — so each validation rule is pinned down in isolation.
"""

import socket

import numpy as np
import pytest

from repro.errors import ConfigurationError, ProtocolError
from repro.graph.stream import EventBlock
from repro.samplers.checkpoint import state_from_wire, state_to_wire
from repro.streams.transport import (
    FRAME_BLOCK,
    FRAME_CONTROL,
    FRAME_HELLO,
    PROTOCOL_VERSION,
    _FRAME_HEADER,
    _FRAME_MAGIC,
    block_from_frame,
    expect_hello,
    hello_payload,
    parse_address,
    read_frame,
    write_frame,
)


@pytest.fixture()
def pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


def make_block(n=5):
    rng = np.random.default_rng(7)
    u = rng.integers(0, 50, size=n)
    v = u + 1 + rng.integers(0, 10, size=n)
    return EventBlock(np.ones(n, dtype=bool), u, v)


class TestFraming:
    @pytest.mark.parametrize(
        "kind,payload",
        [
            (FRAME_HELLO, b'{"protocol": 1}'),
            (FRAME_CONTROL, b"\x80\x05pickled"),
            (FRAME_BLOCK, b"columns"),
            (FRAME_CONTROL, b""),  # zero-length payloads are legal
        ],
    )
    def test_round_trip(self, pair, kind, payload):
        left, right = pair
        write_frame(left, kind, payload)
        assert read_frame(right) == (kind, payload)

    def test_frames_preserve_order(self, pair):
        left, right = pair
        for i in range(5):
            write_frame(left, FRAME_CONTROL, bytes([i]))
        for i in range(5):
            assert read_frame(right) == (FRAME_CONTROL, bytes([i]))

    def test_clean_close_between_frames_is_none(self, pair):
        left, right = pair
        write_frame(left, FRAME_CONTROL, b"last")
        left.close()
        assert read_frame(right) == (FRAME_CONTROL, b"last")
        assert read_frame(right) is None

    def test_truncated_payload_raises(self, pair):
        left, right = pair
        header = _FRAME_HEADER.pack(
            _FRAME_MAGIC, PROTOCOL_VERSION, FRAME_CONTROL, 100
        )
        left.sendall(header + b"only a few bytes")
        left.close()
        with pytest.raises(ProtocolError, match="truncated"):
            read_frame(right)

    def test_truncated_header_raises(self, pair):
        left, right = pair
        left.sendall(b"RS")  # partial magic, then EOF
        left.close()
        with pytest.raises(ProtocolError, match="truncated"):
            read_frame(right)

    def test_bad_magic_raises(self, pair):
        left, right = pair
        left.sendall(
            _FRAME_HEADER.pack(b"NOPE", PROTOCOL_VERSION, FRAME_CONTROL, 0)
        )
        with pytest.raises(ProtocolError, match="magic"):
            read_frame(right)

    def test_cross_version_frame_raises(self, pair):
        left, right = pair
        left.sendall(
            _FRAME_HEADER.pack(
                _FRAME_MAGIC, PROTOCOL_VERSION + 1, FRAME_CONTROL, 0
            )
        )
        with pytest.raises(ProtocolError, match="version"):
            read_frame(right)

    def test_unknown_kind_raises(self, pair):
        left, right = pair
        left.sendall(
            _FRAME_HEADER.pack(_FRAME_MAGIC, PROTOCOL_VERSION, 99, 0)
        )
        with pytest.raises(ProtocolError, match="kind"):
            read_frame(right)

    def test_absurd_length_raises(self, pair):
        left, right = pair
        left.sendall(
            _FRAME_HEADER.pack(
                _FRAME_MAGIC, PROTOCOL_VERSION, FRAME_CONTROL, 1 << 40
            )
        )
        with pytest.raises(ProtocolError, match="frame cap"):
            read_frame(right)


class TestHandshake:
    def test_hello_round_trip(self, pair):
        left, right = pair
        write_frame(left, FRAME_HELLO, hello_payload("coordinator"))
        meta = expect_hello(right, peer="coordinator")
        assert meta["protocol"] == PROTOCOL_VERSION
        assert meta["role"] == "coordinator"

    def test_version_mismatch_rejected_at_handshake(self, pair):
        left, right = pair
        payload = (
            '{"protocol": %d, "role": "x"}' % (PROTOCOL_VERSION + 5)
        ).encode()
        write_frame(left, FRAME_HELLO, payload)
        with pytest.raises(ProtocolError, match="protocol"):
            expect_hello(right, peer="peer")

    def test_non_hello_first_frame_rejected(self, pair):
        left, right = pair
        write_frame(left, FRAME_CONTROL, b"not a hello")
        with pytest.raises(ProtocolError, match="HELLO"):
            expect_hello(right, peer="peer")

    def test_eof_before_hello_rejected(self, pair):
        left, right = pair
        left.close()
        with pytest.raises(ProtocolError, match="before HELLO"):
            expect_hello(right, peer="peer")


class TestBlockFrames:
    def test_block_round_trip(self):
        block = make_block()
        restored = block_from_frame(block.to_bytes())
        assert np.array_equal(restored.u, block.u)
        assert np.array_equal(restored.v, block.v)
        assert np.array_equal(restored.is_insert, block.is_insert)

    def test_truncated_block_payload_raises(self):
        payload = make_block().to_bytes()
        with pytest.raises(ProtocolError):
            block_from_frame(payload[: len(payload) - 4])

    def test_padded_block_payload_raises(self):
        # A frame longer than the block header declares means the byte
        # stream desynchronised — reject rather than drop bytes.
        payload = make_block().to_bytes() + b"\x00" * 8
        with pytest.raises(ProtocolError, match="mismatch"):
            block_from_frame(payload)


class TestCheckpointWire:
    STATE = {"format": "x/v1", "budget": 60, "items": [1, 2.5, "a"]}

    def test_round_trip(self):
        assert state_from_wire(state_to_wire(self.STATE)) == self.STATE

    def test_truncation_raises(self):
        blob = state_to_wire(self.STATE)
        for cut in (0, 4, len(blob) // 2, len(blob) - 1):
            with pytest.raises(ProtocolError):
                state_from_wire(blob[:cut])

    def test_bad_magic_raises(self):
        blob = bytearray(state_to_wire(self.STATE))
        blob[0] ^= 0xFF
        with pytest.raises(ProtocolError, match="magic"):
            state_from_wire(bytes(blob))

    def test_cross_version_raises(self):
        blob = bytearray(state_to_wire(self.STATE))
        blob[4] += 1  # the version byte
        with pytest.raises(ProtocolError, match="version"):
            state_from_wire(bytes(blob))

    def test_payload_corruption_fails_crc(self):
        blob = bytearray(state_to_wire(self.STATE))
        # Flip one payload byte to another value that still decodes as
        # JSON-compatible bytes — the CRC must catch it regardless.
        blob[-2] ^= 0x01
        with pytest.raises(ProtocolError):
            state_from_wire(bytes(blob))

    def test_extra_bytes_fail_length_check(self):
        blob = state_to_wire(self.STATE) + b" "
        with pytest.raises(ProtocolError):
            state_from_wire(blob)

    def test_non_dict_payload_rejected(self):
        import json
        import struct as _struct
        import zlib

        payload = json.dumps([1, 2, 3]).encode()
        header = _struct.Struct("<4sBxxxIQ").pack(
            b"RPCK", 1, zlib.crc32(payload), len(payload)
        )
        with pytest.raises(ProtocolError):
            state_from_wire(header + payload)


class TestParseAddress:
    def test_valid(self):
        assert parse_address("127.0.0.1:9000") == ("127.0.0.1", 9000)
        assert parse_address("node-3:0") == ("node-3", 0)

    @pytest.mark.parametrize(
        "bad", ["localhost", "9000", ":9000", "host:", "host:notaport",
                "host:70000"]
    )
    def test_invalid(self, bad):
        with pytest.raises(ConfigurationError):
            parse_address(bad)
