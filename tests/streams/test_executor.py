"""Tests for the sharded stream executor and hash partitioning."""

import pytest

from repro.errors import ConfigurationError
from repro.graph.generators import powerlaw_cluster
from repro.graph.stream import EdgeEvent
from repro.patterns.exact import ExactCounter
from repro.samplers import GPS, WSD, ThinkD
from repro.streams import (
    ShardedStreamExecutor,
    build_stream,
    default_shard_key,
    partition_events,
    partition_stream,
)
from repro.streams.validate import validate_stream
from repro.utils.rng import RngFactory
from repro.weights.heuristic import GPSHeuristicWeight


@pytest.fixture(scope="module")
def scenario_streams():
    """The deletion-scenario suite on a powerlaw graph, with truths."""
    edges = powerlaw_cluster(300, m=5, triangle_probability=0.6, rng=0)
    streams = {}
    for name in ("insertion-only", "massive", "light"):
        stream = build_stream(edges, name, rng=3)
        exact = ExactCounter("triangle")
        for event in stream:
            exact.process(event)
        streams[name] = (stream, exact.count)
    return streams


def wsd_factory(seed_tag, budget):
    factory = RngFactory(11)

    def make(i):
        return WSD(
            "triangle",
            budget,
            GPSHeuristicWeight(),
            rng=factory.generator(f"{seed_tag}-{i}"),
        )

    return make


class TestRouting:
    def test_default_key_deterministic(self):
        edge = (12, 57)
        assert default_shard_key(edge) == default_shard_key((12, 57))

    def test_string_vertices_supported(self):
        key = default_shard_key(("alice", "bob"))
        assert isinstance(key, int)
        assert key == default_shard_key(("alice", "bob"))

    def test_unstable_vertex_types_rejected(self):
        """Vertices whose repr embeds object identity would route
        differently per process; the default key refuses them."""
        class Opaque:
            __hash__ = object.__hash__

        with pytest.raises(ConfigurationError):
            default_shard_key((Opaque(), Opaque()))

    def test_partition_covers_all_events(self, scenario_streams):
        stream, _ = scenario_streams["light"]
        buckets = partition_events(stream, 4)
        assert sum(len(b) for b in buckets) == len(stream)

    def test_deletion_routes_with_insertion(self, scenario_streams):
        stream, _ = scenario_streams["massive"]
        buckets = partition_events(stream, 4)
        for bucket in buckets:
            edges = {event.edge for event in bucket}
            for event in stream:
                if event.edge in edges:
                    assert (
                        default_shard_key(event.edge) % 4
                        == buckets.index(bucket)
                    )
                    break

    def test_substreams_are_feasible(self, scenario_streams):
        for name, (stream, _) in scenario_streams.items():
            for sub in partition_stream(stream, 4):
                validate_stream(sub)  # raises on infeasibility

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ConfigurationError):
            partition_events([], 0)


class TestExecutorConstruction:
    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardedStreamExecutor(wsd_factory("m", 60), 2, mode="scatter")

    def test_bad_shards_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardedStreamExecutor(wsd_factory("m", 60), 0)

    def test_mixed_patterns_rejected(self):
        factory = RngFactory(0)

        def make(i):
            pattern = "triangle" if i == 0 else "wedge"
            return WSD(
                pattern, 60, GPSHeuristicWeight(),
                rng=factory.generator(str(i)),
            )

        with pytest.raises(ConfigurationError):
            ShardedStreamExecutor(make, 2)


class TestExecutorSemantics:
    def test_process_matches_process_batch(self, scenario_streams):
        stream, _ = scenario_streams["light"]
        one = ShardedStreamExecutor(wsd_factory("eq", 50), 4)
        two = ShardedStreamExecutor(wsd_factory("eq", 50), 4)
        for event in stream:
            one.process(event)
        two.process_batch(list(stream))
        assert one.estimate == two.estimate
        assert one.time == two.time == len(stream)

    def test_batch_boundaries_do_not_matter(self, scenario_streams):
        stream, _ = scenario_streams["light"]
        events = list(stream)
        one = ShardedStreamExecutor(wsd_factory("chunk", 50), 4)
        two = ShardedStreamExecutor(wsd_factory("chunk", 50), 4)
        one.process_batch(events)
        for start in range(0, len(events), 113):
            two.process_batch(events[start:start + 113])
        assert one.estimate == two.estimate

    def test_process_stream_lazy_iterable(self, scenario_streams):
        stream, _ = scenario_streams["light"]
        one = ShardedStreamExecutor(wsd_factory("lazy", 50), 4)
        two = ShardedStreamExecutor(wsd_factory("lazy", 50), 4)
        one.process_batch(list(stream))
        two.process_stream(iter(list(stream)))
        assert one.estimate == two.estimate

    def test_broadcast_identical_seeds_equal_single(self, scenario_streams):
        """Broadcast replicas with the *same* seed collapse to one
        sampler: the mean of identical estimates is the estimate."""
        stream, _ = scenario_streams["light"]
        single = WSD(
            "triangle", 60, GPSHeuristicWeight(), rng=RngFactory(5).generator("x")
        )
        single.process_stream(stream)

        def same_seed(i):
            return WSD(
                "triangle", 60, GPSHeuristicWeight(),
                rng=RngFactory(5).generator("x"),
            )

        executor = ShardedStreamExecutor(same_seed, 4, mode="broadcast")
        executor.process_stream(stream)
        assert executor.estimate == single.estimate

    def test_merged_estimate_broadcast_is_mean(self, scenario_streams):
        stream, _ = scenario_streams["light"]
        executor = ShardedStreamExecutor(
            wsd_factory("mean", 60), 4, mode="broadcast"
        )
        executor.process_stream(stream)
        partials = executor.shard_estimates()
        assert executor.estimate == pytest.approx(sum(partials) / 4.0)

    def test_merged_estimate_partition_is_scaled_sum(self, scenario_streams):
        stream, _ = scenario_streams["light"]
        executor = ShardedStreamExecutor(wsd_factory("sum", 50), 4)
        executor.process_stream(stream)
        partials = executor.shard_estimates()
        assert executor.estimate == pytest.approx(16.0 * sum(partials))

    def test_variance_weighted_merge_available_in_broadcast(
        self, scenario_streams
    ):
        stream, _ = scenario_streams["light"]
        executor = ShardedStreamExecutor(
            wsd_factory("vw", 60), 4, mode="broadcast"
        )
        executor.process_stream(stream)
        merged = executor.merged_estimate(variances=[1.0, 1.0, 1.0, 1.0])
        assert merged == pytest.approx(executor.estimate)

    def test_time_tracks_shard_clocks_after_mid_batch_failure(self):
        """executor.time derives from the shard clocks, so it never
        overcounts when a shard raises part-way through a batch."""
        from repro.errors import SamplerError

        factory = RngFactory(1)
        executor = ShardedStreamExecutor(
            lambda i: GPS(
                "triangle", 20, GPSHeuristicWeight(),
                rng=factory.generator(f"g{i}"),
            ),
            4,
        )
        events = [EdgeEvent.insertion(i, i + 1) for i in range(20)]
        events.append(EdgeEvent.deletion(0, 1))  # GPS rejects deletions
        with pytest.raises(SamplerError):
            executor.process_batch(events)
        assert executor.time == sum(s.time for s in executor.shards)
        assert executor.time <= len(events)

    def test_broadcast_time_is_per_replica_clock(self, scenario_streams):
        stream, _ = scenario_streams["light"]
        executor = ShardedStreamExecutor(
            wsd_factory("clock", 50), 4, mode="broadcast"
        )
        executor.process_batch(list(stream))
        assert executor.time == len(stream)

    def test_gps_partition_insertion_only(self, scenario_streams):
        stream, truth = scenario_streams["insertion-only"]
        factory = RngFactory(2)
        executor = ShardedStreamExecutor(
            lambda i: GPS(
                "triangle", 80, GPSHeuristicWeight(),
                rng=factory.generator(f"gps-{i}"),
            ),
            4,
        )
        executor.process_stream(stream)
        assert executor.estimate > 0.0


class TestShardedVsSingleConsistency:
    """Acceptance: merged estimates within estimator tolerance of
    single-sampler runs across the scenario suite (fixed seeds)."""

    @pytest.mark.parametrize("scenario", ["insertion-only", "massive", "light"])
    def test_partition_tracks_ground_truth(self, scenario_streams, scenario):
        stream, truth = scenario_streams[scenario]
        executor = ShardedStreamExecutor(
            wsd_factory(f"part-{scenario}", 150), 4
        )
        executor.process_stream(stream)
        assert truth > 0
        assert abs(executor.estimate - truth) / truth < 0.6

    @pytest.mark.parametrize("scenario", ["insertion-only", "massive", "light"])
    def test_broadcast_tracks_ground_truth(self, scenario_streams, scenario):
        stream, truth = scenario_streams[scenario]
        executor = ShardedStreamExecutor(
            wsd_factory(f"bc-{scenario}", 150), 4, mode="broadcast"
        )
        executor.process_stream(stream)
        assert abs(executor.estimate - truth) / truth < 0.35

    @pytest.mark.parametrize("scenario", ["massive", "light"])
    def test_thinkd_sharded_consistency(self, scenario_streams, scenario):
        stream, truth = scenario_streams[scenario]
        factory = RngFactory(23)
        executor = ShardedStreamExecutor(
            lambda i: ThinkD(
                "triangle", 300, rng=factory.generator(f"td-{scenario}-{i}")
            ),
            4,
            mode="broadcast",
        )
        executor.process_stream(stream)
        single = ThinkD("triangle", 300, rng=RngFactory(23).generator(f"td-{scenario}-0"))
        single.process_stream(stream)
        # Merged N=4 broadcast tracks truth within estimator tolerance
        # and no worse than a generous multiple of the single run.
        assert abs(executor.estimate - truth) / truth < 0.35
        assert abs(executor.estimate - truth) <= 2.0 * abs(
            single.estimate - truth
        ) + 0.1 * truth

    def test_wedge_partition_scale(self, scenario_streams):
        stream, _ = scenario_streams["light"]
        exact = ExactCounter("wedge")
        for event in stream:
            exact.process(event)
        factory = RngFactory(31)
        executor = ShardedStreamExecutor(
            lambda i: WSD(
                "wedge", 150, GPSHeuristicWeight(),
                rng=factory.generator(f"wedge-{i}"),
            ),
            4,
        )
        executor.process_stream(stream)
        assert abs(executor.estimate - exact.count) / exact.count < 0.6
