"""Unit tests for the deterministic fault-injection harness.

Everything here runs against a fake in-memory transport — the point is
the *scheduling* contract: faults fire at exact send indices, exactly
once, with payload-mangling kinds deferring to block-shaped sends, and
the whole schedule reproducible from a seed.
"""

import pytest

from repro.errors import ConfigurationError
from repro.graph.stream import EdgeEvent, EventBlock
from repro.streams import faults as faults_module
from repro.streams.faults import Fault, FaultPlan, FaultyTransport, active_plan
from repro.streams.transport import TransportClosed


class FakeTransport:
    """Records sends; kill() flips a flag like a real teardown."""

    def __init__(self, shard_index=0):
        self.shard_index = shard_index
        self.sent = []
        self.killed = False
        self.process = object()  # back-compat attribute reached via __getattr__

    def send(self, message):
        self.sent.append(message)

    def send_block(self, block):
        self.sent.append(("block", block.to_bytes()))

    def recv(self):
        return ("ok", None)

    def is_alive(self):
        return not self.killed

    def kill(self):
        self.killed = True

    def release(self):
        pass

    def join(self, timeout):
        pass


def block_of(*pairs):
    return EventBlock.from_events(
        [EdgeEvent.insertion(u, v) for u, v in pairs]
    )


class TestFaultValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "kill"},  # missing at_send
            {"kind": "drop", "at_send": -1},
            {"kind": "kill_worker", "at_event": 5},  # missing shard
            {"kind": "kill_worker", "shard": 0},  # missing at_event
            {"kind": "partition_host", "at_event": 5},  # missing host
            {"kind": "meteor", "at_send": 0},  # unknown kind
            {"kind": "delay", "at_send": 0, "seconds": -1.0},
        ],
    )
    def test_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            Fault(**kwargs).validate()

    def test_plan_validates_eagerly(self):
        with pytest.raises(ConfigurationError):
            FaultPlan([Fault("kill")])


class TestScheduling:
    def test_random_plans_are_seed_deterministic(self):
        a = FaultPlan.random(7, num_shards=3)
        b = FaultPlan.random(7, num_shards=3)
        c = FaultPlan.random(8, num_shards=3)
        assert a.faults == b.faults
        assert a.faults != c.faults
        for fault in a.faults:
            fault.validate()

    def test_send_counts_are_per_shard_and_persist(self):
        plan = FaultPlan([])
        assert [plan.next_send(0) for _ in range(3)] == [0, 1, 2]
        assert plan.next_send(1) == 0  # other shard has its own clock
        assert plan.next_send(0) == 3  # survives across "restarts"

    def test_fault_fires_once_at_threshold(self):
        plan = FaultPlan([Fault("kill", shard=1, at_send=2)])
        assert plan.take_transport_fault(1, 0, is_block=True) is None
        assert plan.take_transport_fault(0, 5, is_block=True) is None  # wrong shard
        fault = plan.take_transport_fault(1, 2, is_block=True)
        assert fault is not None and fault.kind == "kill"
        assert plan.take_transport_fault(1, 3, is_block=True) is None  # one-shot
        assert plan.fired == [{"kind": "kill", "shard": 1, "at_send": 2}]
        assert plan.outstanding() == []

    def test_mangling_kinds_defer_to_block_sends(self):
        plan = FaultPlan([Fault("corrupt", shard=0, at_send=0)])
        assert plan.take_transport_fault(0, 0, is_block=False) is None
        fault = plan.take_transport_fault(0, 1, is_block=True)
        assert fault is not None and fault.kind == "corrupt"

    def test_any_shard_fault(self):
        plan = FaultPlan([Fault("drop", at_send=1)])
        assert plan.take_transport_fault(2, 1, is_block=False).kind == "drop"

    def test_outstanding_reports_unfired(self):
        plan = FaultPlan([Fault("kill", shard=0, at_send=10**9)])
        assert len(plan.outstanding()) == 1


class TestInstallHook:
    def test_context_manager_installs_and_uninstalls(self):
        plan = FaultPlan([])
        assert active_plan() is None
        with plan:
            assert active_plan() is plan
        assert active_plan() is None

    def test_plans_do_not_nest(self):
        with FaultPlan([]):
            with pytest.raises(ConfigurationError, match="nest"):
                faults_module.install(FaultPlan([]))
        assert active_plan() is None

    def test_uninstall_ignores_foreign_plan(self):
        plan = FaultPlan([])
        with plan:
            faults_module.uninstall(FaultPlan([]))
            assert active_plan() is plan


class TestFaultyTransport:
    def test_kill_tears_down_inner_and_raises(self):
        inner = FakeTransport(shard_index=1)
        wrapped = FaultyTransport(inner, FaultPlan([Fault("kill", at_send=0)]))
        with pytest.raises(TransportClosed, match="fault injection"):
            wrapped.send_block(block_of((1, 2)))
        assert inner.killed
        assert inner.sent == []

    def test_drop_behaves_like_kill_at_the_seam(self):
        inner = FakeTransport()
        wrapped = FaultyTransport(inner, FaultPlan([Fault("drop", at_send=0)]))
        with pytest.raises(TransportClosed):
            wrapped.send(("control", "estimate"))
        assert inner.killed

    def test_corrupt_flips_the_wire_magic(self):
        inner = FakeTransport()
        plan = FaultPlan([Fault("corrupt", at_send=0)])
        wrapped = FaultyTransport(inner, plan)
        block = block_of((1, 2), (2, 3))
        wrapped.send_block(block)
        kind, payload = inner.sent[0]
        clean = block.to_bytes()
        assert kind == "block"
        assert payload[0] == clean[0] ^ 0xFF
        assert payload[1:] == clean[1:]

    def test_truncate_halves_the_payload(self):
        inner = FakeTransport()
        wrapped = FaultyTransport(
            inner, FaultPlan([Fault("truncate", at_send=0)])
        )
        block = block_of((1, 2), (2, 3))
        wrapped.send_block(block)
        _, payload = inner.sent[0]
        assert len(payload) == max(1, len(block.to_bytes()) // 2)

    def test_control_sends_pass_mangling_kinds_through(self):
        inner = FakeTransport()
        plan = FaultPlan([Fault("truncate", at_send=0)])
        wrapped = FaultyTransport(inner, plan)
        wrapped.send(("control", "estimate"))
        assert inner.sent == [("control", "estimate")]  # deferred, untouched
        assert plan.outstanding()  # still armed for the next block

    def test_clean_sends_flow_through(self):
        inner = FakeTransport()
        wrapped = FaultyTransport(inner, FaultPlan([]))
        block = block_of((4, 5))
        wrapped.send_block(block)
        wrapped.send(("control", "estimate"))
        assert inner.sent == [
            ("block", block.to_bytes()),
            ("control", "estimate"),
        ]
        assert wrapped.recv() == ("ok", None)
        assert wrapped.is_alive()

    def test_delegates_back_compat_attributes(self):
        inner = FakeTransport()
        wrapped = FaultyTransport(inner, FaultPlan([]))
        assert wrapped.process is inner.process
        assert wrapped.shard_index == inner.shard_index
