"""Process-backend executor tests: the serial-parity contract.

The load-bearing guarantee of ``executor_backend="process"`` is that it
is a pure deployment choice: under fixed seeds it produces estimates
*identical* to the serial backend, for every checkpointable sampler, in
both partition and broadcast modes, regardless of chunking, start
method, or a mid-run crash-restart of a single shard.
"""

import time

import pytest

from repro.errors import ConfigurationError, WorkerCrashError
from repro.graph.generators import powerlaw_cluster
from repro.graph.stream import EdgeEvent
from repro.samplers import GPS, GPSA, WRS, WSD, ThinkD, Triest
from repro.streams import ShardedStreamExecutor, build_stream
from repro.utils.rng import spawn_generators
from repro.weights.heuristic import GPSHeuristicWeight, UniformWeight


@pytest.fixture(scope="module")
def streams():
    edges = powerlaw_cluster(150, m=4, triangle_probability=0.6, rng=0)
    return {
        "light": list(build_stream(edges, "light", rng=3)),
        "insertion-only": list(build_stream(edges, "insertion-only")),
    }


#: Every checkpointable sampler family; GPS is insertion-only by design.
SAMPLER_CASES = [
    ("wsd-h", "light",
     lambda rng: WSD("triangle", 60, GPSHeuristicWeight(), rng=rng)),
    ("wsd-u", "light",
     lambda rng: WSD("triangle", 60, UniformWeight(), rng=rng)),
    ("gps", "insertion-only",
     lambda rng: GPS("triangle", 60, GPSHeuristicWeight(), rng=rng)),
    ("gps-a", "light",
     lambda rng: GPSA("triangle", 60, GPSHeuristicWeight(), rng=rng)),
    ("thinkd", "light", lambda rng: ThinkD("triangle", 60, rng=rng)),
    ("triest", "light", lambda rng: Triest("triangle", 60, rng=rng)),
    ("wrs", "light", lambda rng: WRS("triangle", 60, rng=rng)),
]


def build_executor(make, backend, mode, seed=17, shards=2, **kwargs):
    rngs = spawn_generators(seed, shards)
    return ShardedStreamExecutor(
        lambda i: make(rngs[i]),
        shards,
        mode=mode,
        executor_backend=backend,
        **kwargs,
    )


def run_serial(make, mode, stream, **kwargs):
    executor = build_executor(make, "serial", mode, **kwargs)
    executor.process_stream(stream)
    return executor


class TestSerialProcessParity:
    @pytest.mark.parametrize(
        "name,scenario,make",
        SAMPLER_CASES,
        ids=[case[0] for case in SAMPLER_CASES],
    )
    @pytest.mark.parametrize("mode", ["partition", "broadcast"])
    def test_estimates_identical(self, streams, name, scenario, make, mode):
        stream = streams[scenario]
        serial = run_serial(make, mode, stream)
        with build_executor(make, "process", mode, chunk_size=128) as proc:
            proc.process_stream(stream)
            assert proc.estimate == serial.estimate
            assert proc.shard_estimates() == serial.shard_estimates()
            assert proc.time == serial.time

    def test_chunking_does_not_change_results(self, streams):
        stream = streams["light"]
        make = SAMPLER_CASES[0][2]
        serial = run_serial(make, "partition", stream)
        for chunk_size in (1, 7, 4096):
            with build_executor(
                make, "process", "partition", chunk_size=chunk_size
            ) as proc:
                proc.process_stream(stream)
                assert proc.estimate == serial.estimate

    def test_per_event_ingestion_buffers_and_matches(self, streams):
        stream = streams["light"]
        make = SAMPLER_CASES[0][2]
        serial = run_serial(make, "partition", stream)
        with build_executor(
            make, "process", "partition", chunk_size=64
        ) as proc:
            for event in stream:
                proc.process(event)
            assert proc.estimate == serial.estimate

    def test_mid_stream_estimate_queries_keep_parity(self, streams):
        """Reading the estimate mid-run is a barrier, not a divergence:
        the buffered tail flushes first and the final answer still
        matches serial."""
        stream = streams["light"]
        make = SAMPLER_CASES[0][2]
        serial = run_serial(make, "partition", stream)
        with build_executor(
            make, "process", "partition", chunk_size=32
        ) as proc:
            third = len(stream) // 3
            proc.process_batch(stream[:third])
            mid = proc.estimate
            assert isinstance(mid, float)
            proc.process_batch(stream[third:])
            assert proc.estimate == serial.estimate

    def test_spawn_start_method_parity(self, streams):
        """State ships as checkpoints, so even the no-inherited-memory
        start method reproduces the serial run exactly."""
        stream = streams["light"]
        make = SAMPLER_CASES[0][2]
        serial = run_serial(make, "partition", stream)
        with build_executor(
            make, "process", "partition", mp_context="spawn"
        ) as proc:
            proc.process_stream(stream)
            assert proc.estimate == serial.estimate


class TestCrashRestart:
    def test_single_shard_crash_restart_is_bit_identical(self, streams):
        """Kill one worker mid-stream, restore it from its checkpoint,
        finish the stream: the merged estimate matches the
        uninterrupted run bit-for-bit, without replaying the surviving
        shards."""
        stream = streams["light"]
        make = SAMPLER_CASES[0][2]
        half = len(stream) // 2
        serial = run_serial(make, "partition", stream)

        proc = build_executor(make, "process", "partition", chunk_size=64)
        try:
            proc.process_batch(stream[:half])
            states = proc.snapshot()
            assert len(states) == 2

            victim = proc._workers[0]
            victim.process.kill()
            victim.process.join(5.0)
            assert not victim.is_alive()
            survivor = proc._workers[1]

            proc.restart_shard(0)
            # Only shard 0 was rebuilt; the survivor kept its process.
            assert proc._workers[1] is survivor
            assert survivor.is_alive()

            proc.process_batch(stream[half:])
            assert proc.estimate == serial.estimate
            assert proc.time == serial.time
        finally:
            proc.close()

    def test_restart_requires_a_checkpoint(self, streams):
        stream = streams["light"]
        make = SAMPLER_CASES[0][2]
        proc = build_executor(make, "process", "partition")
        try:
            proc.process_batch(stream[:50])
            with pytest.raises(ConfigurationError):
                proc.restart_shard(0)  # no snapshot() taken yet
            with pytest.raises(ConfigurationError):
                proc.restart_shard(9)
        finally:
            proc.close()

    def test_restart_on_serial_backend_rejected(self, streams):
        executor = build_executor(SAMPLER_CASES[0][2], "serial", "partition")
        with pytest.raises(ConfigurationError):
            executor.restart_shard(0)

    def test_worker_error_names_shard_and_cause(self):
        """A GPS deletion explodes inside the worker; the parent gets a
        WorkerCrashError carrying the SamplerError text."""
        proc = build_executor(
            lambda rng: GPS("triangle", 20, GPSHeuristicWeight(), rng=rng),
            "process", "broadcast", chunk_size=8,
        )
        events = [EdgeEvent.insertion(i, i + 1) for i in range(20)]
        events.append(EdgeEvent.deletion(0, 1))
        with pytest.raises(WorkerCrashError) as excinfo:
            proc.process_batch(events)
        assert "SamplerError" in str(excinfo.value)
        with pytest.raises(WorkerCrashError):
            proc.close()


class TestLifecycle:
    def test_close_harvests_final_state(self, streams):
        """After close() the executor answers queries serially with
        exactly the workers' final state — the mid-run state harvest
        path, exercised end to end."""
        stream = streams["light"]
        make = SAMPLER_CASES[0][2]
        serial = run_serial(make, "partition", stream)
        proc = build_executor(make, "process", "partition", chunk_size=64)
        proc.process_stream(stream)
        workers = proc._workers
        proc.close()
        assert proc._workers is None
        assert all(not w.is_alive() for w in workers)
        # Serial-path queries against the harvested replicas.
        assert proc.estimate == serial.estimate
        assert proc.shard_estimates() == serial.shard_estimates()
        assert proc.time == serial.time
        # And the harvested replicas keep consuming correctly.
        proc.close()  # idempotent

    def test_close_flushes_buffered_tail(self, streams):
        stream = streams["light"]
        make = SAMPLER_CASES[0][2]
        serial = run_serial(make, "partition", stream)
        proc = build_executor(
            make, "process", "partition", chunk_size=10 ** 6
        )
        for event in stream:
            proc.process(event)  # everything stays buffered
        proc.close()
        assert proc.estimate == serial.estimate

    def test_workers_die_with_close_even_after_crash_kill(self, streams):
        stream = streams["light"]
        make = SAMPLER_CASES[0][2]
        proc = build_executor(make, "process", "partition")
        proc.process_batch(stream[:40])
        proc.snapshot()
        proc._workers[1].process.kill()
        proc._workers[1].process.join(5.0)
        with pytest.raises(WorkerCrashError):
            proc.close()
        # The dead shard was restored from its snapshot; queries work.
        assert proc._workers is None
        assert proc.time == 40

    def test_serial_backend_close_is_noop(self, streams):
        executor = run_serial(
            SAMPLER_CASES[0][2], "partition", streams["light"]
        )
        estimate = executor.estimate
        executor.close()
        assert executor.estimate == estimate

    def test_snapshot_works_on_serial_backend(self, streams):
        executor = run_serial(
            SAMPLER_CASES[0][2], "partition", streams["light"]
        )
        states = executor.snapshot()
        assert len(states) == executor.num_shards
        assert all(state["algorithm"] == "wsd" for state in states)


class TestValidation:
    def test_bad_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            build_executor(
                SAMPLER_CASES[0][2], "threads", "partition"
            )

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ConfigurationError):
            build_executor(
                SAMPLER_CASES[0][2], "process", "partition", chunk_size=0
            )

    def test_uncheckpointable_sampler_fails_clearly(self, streams):
        from repro.samplers.thinkd_fast import ThinkDFast

        proc = build_executor(
            lambda rng: ThinkDFast("triangle", 0.5, rng=rng),
            "process", "partition",
        )
        with pytest.raises(ConfigurationError):
            proc.process_batch(streams["light"][:10])


def test_worker_processes_reaped_promptly(streams):
    """No zombie fleet: after close every worker process is joined."""
    make = SAMPLER_CASES[0][2]
    proc = build_executor(make, "process", "broadcast")
    proc.process_batch(streams["light"][:60])
    workers = list(proc._workers)
    proc.close()
    deadline = time.time() + 5.0
    while time.time() < deadline:
        if all(w.process.exitcode is not None for w in workers):
            break
        time.sleep(0.05)
    assert all(w.process.exitcode == 0 for w in workers)


class TestArenaParity:
    """Serial==process bit-identity with the sampled-graph arena live.

    Workers restore replicas from v3 checkpoints, which carry the slab
    cutoff and the slabbed-vertex set — so a low cutoff set in the
    parent must reproduce the parent's adaptive triangle routing inside
    every worker, or the estimates drift apart.
    """

    def test_wsd_triangle_with_slabs(self, streams):
        from repro.samplers import kernel as kernel_mod

        previous = kernel_mod.set_arena_cutoff(4)
        try:
            make = SAMPLER_CASES[0][2]  # wsd-h / triangle
            stream = streams["light"]
            serial = run_serial(make, "partition", stream)
            # The low cutoff must actually produce slabs in a replica.
            assert any(
                len(r._sampled_graph.arena) > 0 for r in serial.shards
            )
            with build_executor(
                make, "process", "partition", chunk_size=64
            ) as proc:
                proc.process_stream(stream)
                assert proc.estimate == serial.estimate
                assert proc.shard_estimates() == serial.shard_estimates()
        finally:
            kernel_mod.set_arena_cutoff(previous)
