"""Remote-backend executor tests: the distributed bit-identity contract.

``executor_backend="remote"`` must be a pure *placement* choice, just
as the process backend is a pure deployment choice: under fixed seeds a
fleet of shard replicas leased across TCP host agents produces
estimates identical to the serial backend — through crashes, frame
corruption, restarts onto surviving hosts, and elastic membership
changes. Host agents here are local processes standing in for separate
machines; nothing in the coordinator path knows the difference.
"""

import os
import socket
import subprocess
import sys
import threading
from pathlib import Path

import pytest

import repro
from repro.errors import ConfigurationError, ProtocolError, WorkerCrashError
from repro.experiments.config import ExperimentConfig
from repro.graph.generators import powerlaw_cluster
from repro.graph.stream import EdgeEvent
from repro.samplers import GPS, GPSA, WRS, WSD, ThinkD, Triest
from repro.samplers.checkpoint import sampler_state_dict
from repro.streams import ShardedStreamExecutor, ShardWorker, build_stream
from repro.streams.workers import encode_events
from repro.streams.host import HostAgent, spawn_local_host
from repro.streams.transport import (
    FRAME_HELLO,
    PROTOCOL_VERSION,
    _FRAME_HEADER,
    _FRAME_MAGIC,
    TcpShardTransport,
    read_frame,
)
from repro.utils.rng import spawn_generators
from repro.weights.heuristic import GPSHeuristicWeight, UniformWeight


@pytest.fixture(scope="module")
def streams():
    edges = powerlaw_cluster(130, m=4, triangle_probability=0.6, rng=0)
    return {
        "light": list(build_stream(edges, "light", rng=3)),
        "insertion-only": list(build_stream(edges, "insertion-only")),
    }


@pytest.fixture(scope="module")
def agents():
    """Two long-lived local host agents, shared across parity tests.

    An agent serves any number of leases over its lifetime, so the
    cheap thing is one pair for the whole module; fault-injection tests
    that kill agents spawn their own.
    """
    hosts = [spawn_local_host(), spawn_local_host()]
    yield hosts
    for host in hosts:
        host.stop()


#: Every checkpointable sampler family; GPS is insertion-only by design.
SAMPLER_CASES = [
    ("wsd-h", "light",
     lambda rng: WSD("triangle", 60, GPSHeuristicWeight(), rng=rng)),
    ("wsd-u", "light",
     lambda rng: WSD("triangle", 60, UniformWeight(), rng=rng)),
    ("gps", "insertion-only",
     lambda rng: GPS("triangle", 60, GPSHeuristicWeight(), rng=rng)),
    ("gps-a", "light",
     lambda rng: GPSA("triangle", 60, GPSHeuristicWeight(), rng=rng)),
    ("thinkd", "light", lambda rng: ThinkD("triangle", 60, rng=rng)),
    ("triest", "light", lambda rng: Triest("triangle", 60, rng=rng)),
    ("wrs", "light", lambda rng: WRS("triangle", 60, rng=rng)),
]


def build_executor(make, backend, mode, seed=17, shards=2, **kwargs):
    rngs = spawn_generators(seed, shards)
    return ShardedStreamExecutor(
        lambda i: make(rngs[i]),
        shards,
        mode=mode,
        executor_backend=backend,
        **kwargs,
    )


def run_serial(make, mode, stream, **kwargs):
    executor = build_executor(make, "serial", mode, **kwargs)
    executor.process_stream(stream)
    return executor


def addresses(agents):
    return [agent.address for agent in agents]


class TestSerialRemoteParity:
    @pytest.mark.parametrize(
        "name,scenario,make",
        SAMPLER_CASES,
        ids=[case[0] for case in SAMPLER_CASES],
    )
    @pytest.mark.parametrize("mode", ["partition", "broadcast"])
    def test_estimates_identical(
        self, streams, agents, name, scenario, make, mode
    ):
        stream = streams[scenario]
        serial = run_serial(make, mode, stream)
        with build_executor(
            make, "remote", mode, chunk_size=128, hosts=addresses(agents)
        ) as remote:
            remote.process_stream(stream)
            assert remote.estimate == serial.estimate
            assert remote.shard_estimates() == serial.shard_estimates()
            assert remote.time == serial.time
        # close() harvested the final worker checkpoints back into the
        # parent replicas; the answers must survive the harvest.
        assert remote.estimate == serial.estimate

    def test_shards_place_round_robin(self, streams, agents):
        make = SAMPLER_CASES[0][2]
        with build_executor(
            make, "remote", "partition", shards=3,
            hosts=addresses(agents), chunk_size=64,
        ) as remote:
            remote.process_batch(streams["light"][:100])
            a, b = addresses(agents)
            assert remote.shard_hosts() == [a, b, a]
            assert remote.hosts == (a, b)

    def test_chunking_does_not_change_results(self, streams, agents):
        stream = streams["light"]
        make = SAMPLER_CASES[0][2]
        serial = run_serial(make, "partition", stream)
        for chunk_size in (32, 4096):
            with build_executor(
                make, "remote", "partition", chunk_size=chunk_size,
                hosts=addresses(agents),
            ) as remote:
                remote.process_stream(stream)
                assert remote.estimate == serial.estimate


class TestRemoteConfiguration:
    def test_remote_requires_hosts(self):
        make = SAMPLER_CASES[0][2]
        with pytest.raises(ConfigurationError, match="hosts"):
            build_executor(make, "remote", "partition")

    def test_hosts_only_valid_for_remote(self):
        make = SAMPLER_CASES[0][2]
        with pytest.raises(ConfigurationError, match="remote"):
            build_executor(
                make, "process", "partition", hosts=["127.0.0.1:1"]
            )

    def test_duplicate_hosts_rejected(self):
        make = SAMPLER_CASES[0][2]
        with pytest.raises(ConfigurationError, match="duplicate"):
            build_executor(
                make, "remote", "partition",
                hosts=["127.0.0.1:1", "127.0.0.1:1"],
            )

    def test_knobs_must_be_positive(self):
        make = SAMPLER_CASES[0][2]
        for knob in ("poll_seconds", "slot_poll_seconds", "stop_timeout"):
            with pytest.raises(ConfigurationError, match=knob):
                build_executor(
                    make, "serial", "partition", **{knob: 0.0}
                )

    def test_membership_ops_require_remote_backend(self):
        make = SAMPLER_CASES[0][2]
        executor = build_executor(make, "serial", "partition")
        with pytest.raises(ConfigurationError, match="remote"):
            executor.add_host("127.0.0.1:1")
        with pytest.raises(ConfigurationError, match="remote"):
            executor.drain_host("127.0.0.1:1")

    def test_experiment_config_validation(self):
        base = ExperimentConfig(shards=2)
        base.with_changes(
            executor_backend="remote",
            executor_hosts=("127.0.0.1:9000",),
        ).validate()
        with pytest.raises(ConfigurationError, match="executor_hosts"):
            base.with_changes(executor_backend="remote").validate()
        with pytest.raises(ConfigurationError, match="remote"):
            base.with_changes(
                executor_hosts=("127.0.0.1:9000",)
            ).validate()
        with pytest.raises(ConfigurationError, match="poll"):
            base.with_changes(executor_poll_seconds=0.0).validate()

    def test_executor_knobs_accepted_with_parity(self, streams, agents):
        """The liveness knobs are plumbing, not semantics: tightening
        them must not change any estimate."""
        stream = streams["light"]
        make = SAMPLER_CASES[0][2]
        serial = run_serial(make, "partition", stream)
        with build_executor(
            make, "remote", "partition", hosts=addresses(agents),
            chunk_size=128, poll_seconds=0.05, stop_timeout=5.0,
        ) as remote:
            remote.process_stream(stream)
            assert remote.estimate == serial.estimate


class TestFaultInjection:
    def test_host_death_mid_stream_names_shard_and_recovers(self, streams):
        """Kill a host agent between batches; the crash names the dead
        shard, restart onto the surviving host continues bit-identically,
        and the survivor is never replayed."""
        stream = streams["light"]
        make = SAMPLER_CASES[0][2]
        serial = run_serial(make, "partition", stream)
        half = len(stream) // 2
        victim, survivor = spawn_local_host(), spawn_local_host()
        try:
            remote = build_executor(
                make, "remote", "partition", chunk_size=64,
                hosts=[victim.address, survivor.address],
            )
            remote.process_batch(stream[:half])
            remote.snapshot()  # barrier: checkpoint covers exactly [:half]
            survivor_time_before = remote.shard_times()[1]
            victim.process.kill()
            victim.process.join(timeout=5.0)
            with pytest.raises(WorkerCrashError) as crash:
                remote.process_batch(stream[half:])
            assert crash.value.shard_index == 0
            assert "shard 0" in str(crash.value)
            remote.restart_shard(0, host=survivor.address)
            assert remote.shard_hosts() == [
                survivor.address, survivor.address
            ]
            # The survivor kept its live state across the recovery —
            # same clock, no replay.
            assert remote.shard_times()[1] == survivor_time_before
            remote.process_batch(stream[half:])
            assert remote.estimate == serial.estimate
            assert remote.shard_times() == [
                shard.time for shard in serial.shards
            ]
            remote.close()
            assert remote.estimate == serial.estimate
        finally:
            victim.stop()
            survivor.stop()

    def test_connection_drop_during_snapshot_recovers(self, streams):
        """Drop one shard's connection; the next snapshot attempt names
        it, and restarting from the retained checkpoint (taken at the
        same event horizon) continues bit-identically."""
        stream = streams["light"]
        make = SAMPLER_CASES[0][2]
        serial = run_serial(make, "partition", stream)
        half = len(stream) // 2
        hosts = [spawn_local_host(), spawn_local_host()]
        try:
            remote = build_executor(
                make, "remote", "partition", chunk_size=64,
                hosts=addresses(hosts),
            )
            remote.process_batch(stream[:half])
            remote.snapshot()
            # Sever shard 0's lease underneath the executor — the
            # "connection lost during a later snapshot" scenario. No
            # events were dispatched since the snapshot, so the retained
            # checkpoint is exactly the replica's lost state.
            remote._workers[0].transport.kill()
            with pytest.raises(WorkerCrashError) as crash:
                remote.snapshot()
            assert crash.value.shard_index == 0
            remote.restart_shard(0)
            remote.process_batch(stream[half:])
            assert remote.estimate == serial.estimate
            assert remote.shard_times() == [
                shard.time for shard in serial.shards
            ]
            remote.close()
        finally:
            for host in hosts:
                host.stop()

    def test_truncated_frame_reported_as_error(self, streams):
        """A frame that dies mid-payload surfaces the host's
        ProtocolError as an ordinary error reply, not garbage."""
        agent = HostAgent()
        server = threading.Thread(target=agent.serve_forever, daemon=True)
        server.start()
        try:
            make = SAMPLER_CASES[4][2]  # thinkd: no weight_fn needed
            state = sampler_state_dict(make(spawn_generators(1, 1)[0]))
            transport = TcpShardTransport(0, state, None, agent.address)
            header = _FRAME_HEADER.pack(
                _FRAME_MAGIC, PROTOCOL_VERSION, 1, 50
            )
            transport._sock.sendall(header + b"ten bytes!")
            transport._sock.shutdown(socket.SHUT_WR)  # EOF mid-frame
            reply = transport.recv()
            assert reply[0] == "error"
            assert "truncated" in reply[2]
            transport.release()
        finally:
            agent.shutdown()

    def test_garbage_magic_reported_as_error(self, streams):
        agent = HostAgent()
        server = threading.Thread(target=agent.serve_forever, daemon=True)
        server.start()
        try:
            make = SAMPLER_CASES[4][2]
            state = sampler_state_dict(make(spawn_generators(1, 1)[0]))
            transport = TcpShardTransport(0, state, None, agent.address)
            transport._sock.sendall(
                _FRAME_HEADER.pack(b"EVIL", PROTOCOL_VERSION, 1, 0)
            )
            reply = transport.recv()
            assert reply[0] == "error"
            assert "magic" in reply[2]
            transport.release()
        finally:
            agent.shutdown()

    def test_cross_version_peer_rejected_at_handshake(self, streams):
        """A host speaking a different protocol version is rejected
        before any lease payload is exchanged."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen()
        host, port = listener.getsockname()[:2]

        def impostor():
            conn, _ = listener.accept()
            read_frame(conn)  # swallow the client's HELLO
            conn.sendall(
                _FRAME_HEADER.pack(
                    _FRAME_MAGIC, PROTOCOL_VERSION + 1, FRAME_HELLO, 0
                )
            )
            conn.close()

        server = threading.Thread(target=impostor, daemon=True)
        server.start()
        try:
            make = SAMPLER_CASES[4][2]
            state = sampler_state_dict(make(spawn_generators(1, 1)[0]))
            with pytest.raises(ProtocolError, match="version"):
                TcpShardTransport(0, state, None, f"{host}:{port}")
        finally:
            listener.close()
            server.join(timeout=5.0)

    def test_replica_failure_ships_traceback(self, agents):
        """A replica that raises reports the cause over the wire, just
        like a local worker process does through its outbox."""
        make = SAMPLER_CASES[2][2]  # gps: deletions are a SamplerError
        sampler = make(spawn_generators(1, 1)[0])
        worker = ShardWorker(
            3,
            sampler_state_dict(sampler),
            weight_fn=sampler.weight_fn,
            host=agents[0].address,
        )
        events = [EdgeEvent.insertion(i, i + 1) for i in range(20)]
        events.append(EdgeEvent.deletion(0, 1))
        worker.send_batch(encode_events(events))
        with pytest.raises(WorkerCrashError, match="shard 3") as excinfo:
            worker.request("sync")
        assert "SamplerError" in str(excinfo.value)


class TestElasticMembership:
    def test_add_then_drain_streams_bit_identically(self, streams):
        """Start on 2 hosts, add a third mid-stream, drain the first
        mid-stream, keep streaming — final estimates bit-identical to
        serial and no shard ever replayed (per-shard clocks exact)."""
        stream = streams["light"]
        make = SAMPLER_CASES[0][2]
        serial = run_serial(make, "partition", stream, shards=3)
        hosts = [spawn_local_host() for _ in range(3)]
        a, b, c = addresses(hosts)
        third = len(stream) // 3
        try:
            remote = build_executor(
                make, "remote", "partition", shards=3, chunk_size=64,
                hosts=[a, b],
            )
            remote.process_batch(stream[:third])
            clocks_before = remote.shard_times()

            moved_in = remote.add_host(c)
            assert remote.hosts == (a, b, c)
            assert c in remote.shard_hosts()
            assert moved_in  # 3 shards over 3 hosts: one must move
            # The handoff is a checkpoint move, not a replay: clocks
            # are exactly where the first third left them.
            assert remote.shard_times() == clocks_before

            remote.process_batch(stream[third:2 * third])
            clocks_mid = remote.shard_times()

            moved_out = remote.drain_host(a)
            assert remote.hosts == (b, c)
            assert a not in remote.shard_hosts()
            assert moved_out
            assert remote.shard_times() == clocks_mid

            remote.process_batch(stream[2 * third:])
            assert remote.estimate == serial.estimate
            assert remote.shard_estimates() == serial.shard_estimates()
            assert remote.shard_times() == [
                shard.time for shard in serial.shards
            ]
            remote.close()
            assert remote.estimate == serial.estimate
        finally:
            for host in hosts:
                host.stop()

    def test_add_host_before_launch_joins_initial_placement(self, agents):
        make = SAMPLER_CASES[0][2]
        remote = build_executor(
            make, "remote", "partition", shards=2,
            hosts=[agents[0].address],
        )
        assert remote.add_host(agents[1].address) == []
        remote.process_batch([])  # launch the fleet
        assert remote.shard_hosts() == [
            agents[0].address, agents[1].address
        ]
        remote.close()

    def test_drain_guards(self, agents):
        make = SAMPLER_CASES[0][2]
        remote = build_executor(
            make, "remote", "partition", hosts=[agents[0].address],
        )
        with pytest.raises(ConfigurationError, match="only host"):
            remote.drain_host(agents[0].address)
        with pytest.raises(ConfigurationError, match="not a member"):
            remote.drain_host("127.0.0.1:1")
        with pytest.raises(ConfigurationError, match="already a member"):
            remote.add_host(agents[0].address)
        remote.close()

    def test_restart_shard_rejects_non_member_host(self, streams, agents):
        make = SAMPLER_CASES[0][2]
        remote = build_executor(
            make, "remote", "partition", hosts=addresses(agents),
        )
        remote.process_batch(streams["light"][:50])
        remote.snapshot()
        with pytest.raises(ConfigurationError, match="not a member"):
            remote.restart_shard(0, host="127.0.0.1:1")
        remote.close()


class TestHostAgentCli:
    def test_module_entry_point_serves_leases(self, streams):
        """``python -m repro.streams.host --listen`` is the real
        deployment surface; drive one worker through it end to end."""
        env = dict(os.environ)
        src_dir = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = (
            src_dir + os.pathsep + env.get("PYTHONPATH", "")
        ).rstrip(os.pathsep)
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.streams.host",
                "--listen", "127.0.0.1:0",
            ],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            line = proc.stdout.readline()
            assert "listening on" in line
            address = line.strip().rsplit(" ", 1)[-1]
            make = SAMPLER_CASES[4][2]
            sampler = make(spawn_generators(1, 1)[0])
            reference = make(spawn_generators(1, 1)[0])
            worker = ShardWorker(0, sampler_state_dict(sampler), host=address)
            events = streams["light"][:200]
            worker.send_batch(encode_events(events))
            reference.process_batch(events)
            _, _, shard_time, estimate = worker.request("sync")
            assert shard_time == reference.time
            assert estimate == reference.estimate
            state = worker.stop()
            assert state == sampler_state_dict(reference)
        finally:
            proc.terminate()
            proc.wait(timeout=10.0)
