"""Tests for the deletion-scenario stream builders."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.graph.generators import forest_fire
from repro.streams.scenarios import (
    build_stream,
    insertion_only_stream,
    light_deletion_stream,
    massive_deletion_stream,
)
from repro.streams.validate import is_feasible, validate_stream


@pytest.fixture(scope="module")
def edges():
    return forest_fire(200, p=0.45, rng=11)


class TestInsertionOnly:
    def test_no_deletions(self, edges):
        stream = insertion_only_stream(edges)
        assert stream.num_deletions == 0
        assert stream.num_insertions == len(edges)

    def test_feasible(self, edges):
        assert is_feasible(insertion_only_stream(edges))


class TestMassiveDeletion:
    def test_feasible(self, edges):
        stream = massive_deletion_stream(edges, alpha=0.05, beta_m=0.8, rng=0)
        validate_stream(stream)

    def test_zero_alpha_means_no_deletions(self, edges):
        stream = massive_deletion_stream(edges, alpha=0.0, rng=0)
        assert stream.num_deletions == 0

    def test_deletions_happen(self, edges):
        stream = massive_deletion_stream(edges, alpha=0.05, beta_m=0.8, rng=0)
        assert stream.num_deletions > 0

    def test_higher_beta_more_deletions(self, edges):
        low = massive_deletion_stream(edges, alpha=0.05, beta_m=0.2, rng=3)
        high = massive_deletion_stream(edges, alpha=0.05, beta_m=0.9, rng=3)
        assert high.num_deletions > low.num_deletions

    def test_deterministic(self, edges):
        a = massive_deletion_stream(edges, alpha=0.03, rng=5)
        b = massive_deletion_stream(edges, alpha=0.03, rng=5)
        assert a == b

    def test_invalid_alpha(self, edges):
        with pytest.raises(ConfigurationError):
            massive_deletion_stream(edges, alpha=1.5)

    def test_invalid_window(self, edges):
        with pytest.raises(ConfigurationError):
            massive_deletion_stream(edges, alpha=0.1, deletion_window=0.0)

    def test_window_limits_deletion_positions(self, edges):
        stream = massive_deletion_stream(
            edges, alpha=0.08, beta_m=0.9, rng=1, deletion_window=0.5
        )
        insertions_seen = 0
        last_deletion_at = 0
        for event in stream:
            if event.is_insertion:
                insertions_seen += 1
            else:
                last_deletion_at = insertions_seen
        # Deletion bursts may only trigger within the first half of
        # insertions (+1 because the trigger follows the insertion).
        assert last_deletion_at <= int(0.5 * len(edges)) + 1

    def test_full_window_matches_paper_construction(self, edges):
        stream = massive_deletion_stream(
            edges, alpha=0.05, beta_m=0.8, rng=2, deletion_window=1.0
        )
        validate_stream(stream)

    def test_insertion_count_preserved(self, edges):
        stream = massive_deletion_stream(edges, alpha=0.05, rng=4)
        assert stream.num_insertions == len(edges)


class TestLightDeletion:
    def test_feasible(self, edges):
        validate_stream(light_deletion_stream(edges, beta_l=0.3, rng=0))

    def test_zero_beta_no_deletions(self, edges):
        assert light_deletion_stream(edges, beta_l=0.0, rng=0).num_deletions == 0

    def test_deletion_fraction_close_to_beta(self, edges):
        beta = 0.3
        stream = light_deletion_stream(edges, beta_l=beta, rng=1)
        fraction = stream.num_deletions / len(edges)
        assert abs(fraction - beta) < 0.12

    def test_all_deleted_with_beta_one(self, edges):
        stream = light_deletion_stream(edges, beta_l=1.0, rng=2)
        assert stream.num_deletions == len(edges)
        assert stream.final_edge_count() == 0

    def test_deterministic(self, edges):
        a = light_deletion_stream(edges, beta_l=0.2, rng=9)
        b = light_deletion_stream(edges, beta_l=0.2, rng=9)
        assert a == b

    def test_invalid_beta(self, edges):
        with pytest.raises(ConfigurationError):
            light_deletion_stream(edges, beta_l=-0.1)

    @given(st.floats(0.0, 1.0), st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_always_feasible(self, beta, seed):
        edges = forest_fire(60, p=0.4, rng=17)
        stream = light_deletion_stream(edges, beta_l=beta, rng=seed)
        assert is_feasible(stream)


class TestBuildStream:
    def test_dispatch_insertion_only(self, edges):
        assert build_stream(edges, "insertion-only").num_deletions == 0

    def test_dispatch_massive_defaults(self, edges):
        stream = build_stream(edges, "massive", rng=0)
        validate_stream(stream)

    def test_dispatch_light_defaults(self, edges):
        stream = build_stream(edges, "light", rng=0)
        validate_stream(stream)

    def test_unknown_scenario(self, edges):
        with pytest.raises(ConfigurationError):
            build_stream(edges, "tidal")
