"""The RSX2 control codec: round-trips, bombs, schema validators.

The codec is the hostile-bytes boundary — everything a socket or a WAL
segment can contain goes through :func:`decode` before any protocol
handler sees it. These tests pin the two halves of that contract:
well-formed values round-trip exactly (types included), and malformed
or adversarial bytes raise :class:`ProtocolError` without unbounded
allocation or recursion.
"""

import struct
import zlib

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.graph.stream import DELETE, INSERT, EdgeEvent, EventBlock
from repro.streams.codec import (
    MAX_DEPTH,
    WAL_MAGIC,
    decode,
    encode,
    validate_host_reply,
    validate_host_request,
    validate_service_reply,
    validate_service_request,
    validate_weight_spec,
    wal_from_wire,
    wal_to_wire,
)

_U32 = struct.Struct("<I")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -1,
            (1 << 63) - 1,
            -(1 << 63),
            1 << 200,  # bigint path
            -(1 << 200),
            3.5,
            float("inf"),
            "",
            "héllo",
            b"",
            b"\x00\xff" * 10,
            [],
            [1, "two", None],
            (),
            (1, (2, (3,))),
            {},
            {"a": 1, 2: "b"},
            ("sync", 7, 123, 4.5),
        ],
    )
    def test_value_round_trips_exactly(self, value):
        restored = decode(encode(value))
        assert restored == value
        assert type(restored) is type(value)

    def test_nan_round_trips(self):
        restored = decode(encode(float("nan")))
        assert restored != restored  # NaN

    def test_bool_is_not_collapsed_to_int(self):
        assert decode(encode(True)) is True
        assert decode(encode([0, False])) == [0, False]
        assert [type(v) for v in decode(encode([0, False]))] == [int, bool]

    def test_numpy_scalars_coerce_to_python(self):
        value = decode(
            encode([np.int64(7), np.float64(2.5), np.bool_(True)])
        )
        assert value == [7, 2.5, True]
        assert [type(v) for v in value] == [int, float, bool]

    def test_edge_event_round_trips(self):
        events = [
            EdgeEvent(INSERT, (3, 9)),
            EdgeEvent(DELETE, (9, 3)),
            EdgeEvent(INSERT, ("a", "b")),
        ]
        restored = decode(encode(events))
        assert restored == events
        assert all(isinstance(event, EdgeEvent) for event in restored)

    def test_event_block_round_trips(self):
        block = EventBlock.from_events(
            [EdgeEvent(INSERT, (u, u + 1)) for u in range(50)]
        )
        restored = decode(encode(block))
        assert isinstance(restored, EventBlock)
        assert restored.to_bytes() == block.to_bytes()

    def test_unencodable_value_raises(self):
        with pytest.raises(ProtocolError, match="no control-codec encoding"):
            encode(object())
        with pytest.raises(ProtocolError):
            encode({("tuple", "key"): 1})  # dict keys are int/str only


class TestHostileBytes:
    def test_empty_and_truncated_payloads(self):
        with pytest.raises(ProtocolError):
            decode(b"")
        blob = encode(("sync", 7, 123, 4.5))
        for cut in (1, len(blob) // 2, len(blob) - 1):
            with pytest.raises(ProtocolError):
                decode(blob[:cut])

    def test_trailing_bytes_rejected(self):
        with pytest.raises(ProtocolError, match="trailing"):
            decode(encode(1) + b"\x00")

    def test_unknown_tag_rejected(self):
        with pytest.raises(ProtocolError):
            decode(b"\xfe")

    def test_depth_bomb_rejected(self):
        # [[[...]]] nested past MAX_DEPTH, hand-framed: the encoder
        # refuses to produce this, so build the bytes directly.
        bomb = (b"\x07" + _U32.pack(1)) * (MAX_DEPTH + 1) + b"\x00"
        with pytest.raises(ProtocolError, match="nests deeper"):
            decode(bomb)
        legal = (b"\x07" + _U32.pack(1)) * (MAX_DEPTH - 1) + b"\x00"
        assert decode(legal) is not None

    def test_size_bomb_rejected_without_allocation(self):
        # A 9-byte payload declaring 2**31-1 list elements: the count
        # must be bounded by the bytes actually present, not trusted.
        bomb = b"\x07" + _U32.pack((1 << 31) - 1)
        with pytest.raises(ProtocolError, match="declares"):
            decode(bomb)
        with pytest.raises(ProtocolError):
            decode(b"\x06" + _U32.pack((1 << 32) - 9))  # huge bytes claim
        with pytest.raises(ProtocolError):
            decode(b"\x05" + _U32.pack(1 << 30))  # huge str claim

    def test_oversized_bigint_rejected(self):
        with pytest.raises(ProtocolError):
            encode(1 << 5000)
        with pytest.raises(ProtocolError):
            decode(b"\x0a" + bytes([255]))


class TestWalFraming:
    def _entries(self):
        events = [EdgeEvent(INSERT, (u, u + 1)) for u in range(20)]
        return [events[:10], EventBlock.from_events(events[10:])]

    def test_round_trip(self):
        entries = self._entries()
        restored = wal_from_wire(wal_to_wire(entries))
        assert restored[0] == entries[0]
        assert isinstance(restored[1], EventBlock)
        assert restored[1].to_bytes() == entries[1].to_bytes()

    def test_zero_length_segment_rejected(self):
        with pytest.raises(ProtocolError, match="short"):
            wal_from_wire(b"")

    def test_truncated_segment_rejected(self):
        blob = wal_to_wire(self._entries())
        with pytest.raises(ProtocolError, match="truncated"):
            wal_from_wire(blob[:-3])

    def test_bit_flip_fails_crc(self):
        blob = bytearray(wal_to_wire(self._entries()))
        blob[len(blob) // 2] ^= 0x40
        with pytest.raises(ProtocolError, match="CRC"):
            wal_from_wire(bytes(blob))

    def test_wrong_magic_and_version_rejected(self):
        blob = wal_to_wire(self._entries())
        assert blob[:4] == WAL_MAGIC
        with pytest.raises(ProtocolError, match="magic"):
            wal_from_wire(b"XXXX" + blob[4:])
        wrong_version = bytearray(blob)
        wrong_version[4] = 99
        with pytest.raises(ProtocolError, match="format"):
            wal_from_wire(bytes(wrong_version))

    def test_payload_that_is_not_an_entry_list_rejected(self):
        payload = encode({"not": "entries"})
        header = struct.Struct("<4sBxxxII").pack(
            WAL_MAGIC, 1, zlib.crc32(payload), len(payload)
        )
        with pytest.raises(ProtocolError, match="entry list"):
            wal_from_wire(header + payload)


class TestSchemaValidators:
    def test_valid_host_messages_pass_through(self):
        lease = ("lease", 3, b"state", ("uniform", {}))
        assert validate_host_request(lease) is lease
        assert validate_host_request(("batch", [(True, 1, 2)]))
        assert validate_host_request(("sync", 7))
        assert validate_host_reply(("lease", 3, "ok"))
        assert validate_host_reply(("sync", 7, 10, 2.5))
        assert validate_host_reply(("stop", 9, b"state"))
        assert validate_host_reply(("error", None, "trace"))

    @pytest.mark.parametrize(
        "message",
        [
            None,
            "lease",
            (),
            ("unknown-op", 1),
            ("lease", -1, b"state", None),  # negative shard
            ("lease", 1 << 40, b"state", None),  # absurd shard
            ("lease", 0, b"", None),  # empty state
            ("lease", 0, "not-bytes", None),
            ("lease", 0, b"state", ("x" * 500, {})),  # giant name
            ("lease", 0, b"state", ("w", {"fn": object()})),
            ("batch", [(True, 1)]),  # malformed triple
            ("sync",),  # missing token
        ],
    )
    def test_malformed_host_requests_rejected(self, message):
        with pytest.raises(ProtocolError):
            validate_host_request(message)

    @pytest.mark.parametrize(
        "reply",
        [
            ("lease", 3, "nope"),
            ("sync", 7, -1, 2.5),  # negative time
            ("sync", 7, 10, True),  # bool estimate
            ("sync", 7, 10),  # missing estimate
            ("stop", 9, "not-bytes"),
            ("error", None, 42),
            ("no-such-op", 1, 2),
        ],
    )
    def test_malformed_host_replies_rejected(self, reply):
        with pytest.raises(ProtocolError):
            validate_host_reply(reply)

    def test_valid_service_messages_pass_through(self):
        create = ("create", 1, "s", {"budget": 10}, None)
        assert validate_service_request(create) is create
        assert validate_service_request(
            ("ingest", 2, [EdgeEvent(INSERT, (1, 2))])
        )
        assert validate_service_request(("query", 3, "estimate", {}))
        assert validate_service_request(("checkpoint", 4))
        assert validate_service_reply(("query", 3, 2.5))
        assert validate_service_reply(("error", None, "trace"))
        assert validate_service_reply(("overloaded", None, {"retry_after": 1}))

    @pytest.mark.parametrize(
        "message",
        [
            ("create", 1, "s", "not-a-dict", None),
            ("create", 1, 42, {}, None),  # non-string name
            ("ingest", 2, [("not", "an", "event")]),
            ("ingest", 2, "abc"),
            ("query", 3, "x" * 300, {}),  # megabyte-name guard
            ("streams", 4, "extra"),
            ("nope", 1),
        ],
    )
    def test_malformed_service_requests_rejected(self, message):
        with pytest.raises(ProtocolError):
            validate_service_request(message)

    @pytest.mark.parametrize(
        "reply",
        [
            ("query", None, 2.5),  # token None only for error/overloaded
            ("error", 1, 42),
            ("overloaded", None, "not-a-dict"),
            ("created", 1, {}),
        ],
    )
    def test_malformed_service_replies_rejected(self, reply):
        with pytest.raises(ProtocolError):
            validate_service_reply(reply)

    def test_weight_spec_bounds(self):
        assert validate_weight_spec(None) is None
        spec = ("gps-heuristic", {"slope": 9.0, "offset": 1.0})
        assert validate_weight_spec(spec) is spec
        with pytest.raises(ProtocolError):
            validate_weight_spec(("name",))  # not a pair
        with pytest.raises(ProtocolError):
            validate_weight_spec(("w", {"fn": [1, 2]}))  # non-scalar param
        with pytest.raises(ProtocolError):
            validate_weight_spec(("w", {i: i for i in range(40)}))
