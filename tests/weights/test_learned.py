"""Tests for the learned weight function (WSD-L adapter)."""

import numpy as np
import pytest

from repro.errors import PolicyError
from repro.graph.adjacency import DynamicAdjacency
from repro.patterns.cliques import Triangle
from repro.rl.policy import Policy
from repro.weights.base import WeightContext
from repro.weights.learned import LearnedWeight


def ctx():
    adj = DynamicAdjacency()
    adj.add_edge(1, 3)
    adj.add_edge(2, 3)
    return WeightContext(
        edge=(1, 2),
        time=7,
        instances=[((1, 3), (2, 3))],
        adjacency=adj,
        edge_times={(1, 3): 1, (2, 3): 2},
        pattern=Triangle(),
    )


class _ConstantPolicy:
    def __init__(self, value):
        self.value = value

    def action(self, state):
        return self.value


class TestLearnedWeight:
    def test_returns_policy_action(self):
        wf = LearnedWeight(_ConstantPolicy(3.5))
        assert wf(ctx()) == 3.5

    def test_floors_tiny_outputs(self):
        wf = LearnedWeight(_ConstantPolicy(0.0), minimum_weight=0.5)
        assert wf(ctx()) == 0.5

    def test_rejects_nonfinite(self):
        wf = LearnedWeight(_ConstantPolicy(float("nan")))
        with pytest.raises(PolicyError):
            wf(ctx())

    def test_invalid_aggregation(self):
        with pytest.raises(PolicyError):
            LearnedWeight(_ConstantPolicy(1.0), temporal_aggregation="sum")

    def test_invalid_minimum_weight(self):
        with pytest.raises(PolicyError):
            LearnedWeight(_ConstantPolicy(1.0), minimum_weight=0.0)

    def test_with_real_policy(self):
        policy = Policy(weights=np.ones(6), bias=0.0)
        wf = LearnedWeight(policy)
        weight = wf(ctx())
        assert weight >= 1.0  # ReLU(+) + 1

    def test_policy_dim_mismatch_raises(self):
        policy = Policy(weights=np.ones(4), bias=0.0)
        wf = LearnedWeight(policy)
        with pytest.raises(PolicyError):
            wf(ctx())

    def test_normalize_flag_changes_state(self):
        seen = []

        class Recorder:
            def action(self, state):
                seen.append(state.copy())
                return 1.0

        LearnedWeight(Recorder(), normalize=True)(ctx())
        LearnedWeight(Recorder(), normalize=False)(ctx())
        assert not np.array_equal(seen[0], seen[1])
