"""Tests for the heuristic weight functions."""

import pytest

from repro.errors import ConfigurationError
from repro.graph.adjacency import DynamicAdjacency
from repro.patterns.cliques import Triangle
from repro.weights.base import WeightContext
from repro.weights.heuristic import DegreeWeight, GPSHeuristicWeight, UniformWeight


def make_ctx(instances=(), adjacency=None, edge=(1, 2), time=5):
    adj = adjacency or DynamicAdjacency()
    return WeightContext(
        edge=edge,
        time=time,
        instances=list(instances),
        adjacency=adj,
        edge_times={},
        pattern=Triangle(),
    )


class TestGPSHeuristicWeight:
    def test_paper_formula(self):
        wf = GPSHeuristicWeight()
        assert wf(make_ctx()) == 1.0
        assert wf(make_ctx(instances=[((1, 3), (2, 3))])) == 10.0
        assert wf(make_ctx(instances=[((1, 3), (2, 3))] * 3)) == 28.0

    def test_custom_slope_offset(self):
        wf = GPSHeuristicWeight(slope=2.0, offset=0.5)
        assert wf(make_ctx(instances=[((1, 3), (2, 3))])) == 2.5

    def test_rejects_nonpositive_offset(self):
        with pytest.raises(ConfigurationError):
            GPSHeuristicWeight(offset=0.0)

    def test_rejects_negative_slope(self):
        with pytest.raises(ConfigurationError):
            GPSHeuristicWeight(slope=-1.0)

    def test_name(self):
        assert GPSHeuristicWeight().name == "heuristic"


class TestUniformWeight:
    def test_always_one(self):
        wf = UniformWeight()
        assert wf(make_ctx()) == 1.0
        assert wf(make_ctx(instances=[((1, 3), (2, 3))] * 5)) == 1.0


class TestDegreeWeight:
    def test_uses_sampled_degrees(self):
        adj = DynamicAdjacency()
        adj.add_edge(1, 10)
        adj.add_edge(1, 11)
        adj.add_edge(2, 12)
        wf = DegreeWeight()
        assert wf(make_ctx(adjacency=adj)) == 4.0  # 2 + 1 + 1

    def test_offset_floor(self):
        assert DegreeWeight(offset=2.0)(make_ctx()) == 2.0

    def test_rejects_nonpositive_offset(self):
        with pytest.raises(ConfigurationError):
            DegreeWeight(offset=-1.0)
