"""Tests for MDP state features (Eqs. 19-22)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graph.adjacency import DynamicAdjacency
from repro.patterns.cliques import Triangle
from repro.patterns.paths import Wedge
from repro.weights.base import WeightContext
from repro.weights.features import (
    raw_state_vector,
    state_dimension,
    state_vector,
)


def triangle_ctx():
    """Edge (1,2) arrives at t=10, closing two triangles against the
    sampled graph: via 3 (edges at times 2, 5) and via 4 (times 7, 8)."""
    adj = DynamicAdjacency()
    for u, v in [(1, 3), (2, 3), (1, 4), (2, 4), (5, 6)]:
        adj.add_edge(u, v)
    edge_times = {(1, 3): 2, (2, 3): 5, (1, 4): 7, (2, 4): 8, (5, 6): 1}
    instances = [((1, 3), (2, 3)), ((1, 4), (2, 4))]
    return WeightContext(
        edge=(1, 2),
        time=10,
        instances=instances,
        adjacency=adj,
        edge_times=edge_times,
        pattern=Triangle(),
    )


class TestStateDimension:
    def test_triangle(self):
        assert state_dimension(Triangle().num_edges) == 6

    def test_wedge(self):
        assert state_dimension(Wedge().num_edges) == 5


class TestRawState:
    def test_topological_block(self):
        state = raw_state_vector(triangle_ctx())
        assert state[0] == 2.0  # |H_k|
        assert state[1] == 2.0  # deg(1) in sampled graph
        assert state[2] == 2.0  # deg(2)

    def test_temporal_block_max(self):
        state = raw_state_vector(triangle_ctx(), temporal_aggregation="max")
        # Instance times sorted: [2, 5, 10] and [7, 8, 10];
        # positionwise max = [7, 8, 10].
        assert list(state[3:]) == [7.0, 8.0, 10.0]

    def test_temporal_block_avg(self):
        state = raw_state_vector(triangle_ctx(), temporal_aggregation="avg")
        assert list(state[3:]) == [4.5, 6.5, 10.0]

    def test_no_instances_zero_temporal(self):
        adj = DynamicAdjacency()
        ctx = WeightContext(
            edge=(1, 2), time=4, instances=[], adjacency=adj,
            edge_times={}, pattern=Triangle(),
        )
        state = raw_state_vector(ctx)
        assert list(state) == [0.0] * 6

    def test_last_position_is_current_time(self):
        state = raw_state_vector(triangle_ctx())
        assert state[-1] == 10.0

    def test_invalid_aggregation(self):
        with pytest.raises(ConfigurationError):
            raw_state_vector(triangle_ctx(), temporal_aggregation="median")

    def test_dimension_matches_pattern(self):
        assert raw_state_vector(triangle_ctx()).shape == (6,)


class TestNormalisedState:
    def test_counts_log_compressed(self):
        state = state_vector(triangle_ctx())
        assert state[0] == pytest.approx(np.log1p(2.0))

    def test_temporal_as_recency_ratio(self):
        state = state_vector(triangle_ctx())
        assert state[-1] == pytest.approx(1.0)
        assert np.all(state[3:] <= 1.0)

    def test_normalize_false_returns_raw(self):
        raw = raw_state_vector(triangle_ctx())
        assert np.array_equal(
            state_vector(triangle_ctx(), normalize=False), raw
        )

    def test_wedge_state_shape(self):
        adj = DynamicAdjacency()
        adj.add_edge(1, 3)
        ctx = WeightContext(
            edge=(1, 2), time=3, instances=[((1, 3),)], adjacency=adj,
            edge_times={(1, 3): 1}, pattern=Wedge(),
        )
        assert state_vector(ctx).shape == (5,)
