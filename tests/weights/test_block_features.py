"""Block-path state features vs the per-event context path (WSD-L).

The serving contract of the block-weight protocol: the raw state rows
the kernels assemble inline (instance counts, degrees, incremental
temporal aggregates) are *bit-identical* to the rows
:func:`~repro.weights.features.raw_state_vector` builds from a captured
:class:`~repro.weights.base.WeightContext`, and the vectorised
:meth:`~repro.weights.learned.LearnedWeight.weights_for_block` replay of
those rows reproduces every per-event weight bit for bit. Both are
audited here across all three registered patterns, both temporal
aggregations, and insertion-only as well as deletion-heavy streams.
"""

import numpy as np
import pytest

from repro.graph.stream import EdgeEvent, EventBlock
from repro.rl.policy import FrozenPolicy
from repro.samplers.gps_a import GPSA
from repro.samplers.wsd import WSD
from repro.weights.features import (
    normalize_state,
    normalize_states,
    state_dimension,
)
from repro.weights.learned import LearnedWeight

#: pattern name -> number of pattern edges |H| (state dim = |H| + 3).
PATTERNS = {"wedge": 2, "triangle": 3, "4-clique": 6}
AGGREGATIONS = ("max", "avg")


def dynamic_stream(num_events=700, num_vertices=40, deletion_fraction=0.3,
                   seed=0):
    rng = np.random.default_rng(seed)
    alive = []
    events = []
    while len(events) < num_events:
        if alive and rng.random() < deletion_fraction:
            i = int(rng.integers(len(alive)))
            events.append(EdgeEvent.deletion(*alive.pop(i)))
        else:
            u = int(rng.integers(num_vertices))
            v = int(rng.integers(num_vertices))
            if u == v:
                continue
            edge = (u, v) if u < v else (v, u)
            if edge in alive:
                continue
            alive.append(edge)
            events.append(EdgeEvent.insertion(*edge))
    return events


def make_policy(dim):
    # Positive weights so temporal features actually move the action
    # (a near-zero actor would hide aggregation bugs behind ReLU).
    return FrozenPolicy(np.linspace(0.05, 0.45, dim), 0.1)


def collect_states(pattern, agg, events, block_serving, batched=False,
                   sampler_cls=WSD, seed=7):
    """Run a WSD-L sampler and harvest every served raw state row."""
    dim = state_dimension(PATTERNS[pattern])
    lw = LearnedWeight(
        make_policy(dim), temporal_aggregation=agg,
        block_serving=block_serving,
    )
    rows, times = [], []

    def observer(row, time):
        rows.append(row)
        times.append(time)

    lw.state_observer = observer
    sampler = sampler_cls(pattern, 40, lw, rng=np.random.default_rng(seed))
    if batched:
        sampler.process_batch(EventBlock.from_events(events))
    else:
        for event in events:
            sampler.process(event)
    return sampler, np.array(rows), np.array(times)


class TestBlockStateFeatures:
    @pytest.mark.parametrize("agg", AGGREGATIONS)
    @pytest.mark.parametrize("pattern", sorted(PATTERNS))
    @pytest.mark.parametrize("deletion_fraction", [0.0, 0.3])
    def test_inline_rows_match_context_rows(
        self, pattern, agg, deletion_fraction
    ):
        """The kernels' inline summaries equal the context-built state.

        The context path re-enumerates instances into a WeightContext
        and builds the row with ``raw_state_vector``; the block path
        assembles the same row from the estimator walk it already does.
        Bit-identical rows for every served insertion, per-event and
        batched alike.
        """
        events = dynamic_stream(deletion_fraction=deletion_fraction, seed=5)
        _, ctx_rows, ctx_times = collect_states(
            pattern, agg, events, block_serving=False
        )
        _, blk_rows, blk_times = collect_states(
            pattern, agg, events, block_serving=True
        )
        _, bat_rows, bat_times = collect_states(
            pattern, agg, events, block_serving=True, batched=True
        )
        assert ctx_rows.shape == blk_rows.shape == bat_rows.shape
        assert np.array_equal(ctx_times, blk_times)
        assert np.array_equal(ctx_rows, blk_rows)
        assert np.array_equal(blk_times, bat_times)
        assert np.array_equal(blk_rows, bat_rows)

    @pytest.mark.parametrize("agg", AGGREGATIONS)
    @pytest.mark.parametrize("pattern", sorted(PATTERNS))
    def test_weights_for_block_matches_per_event(self, pattern, agg):
        """Vectorised replay of the trajectory == per-event serving."""
        events = dynamic_stream(deletion_fraction=0.25, seed=9)
        _, rows, times = collect_states(
            pattern, agg, events, block_serving=True
        )
        dim = state_dimension(PATTERNS[pattern])
        lw = LearnedWeight(make_policy(dim), temporal_aggregation=agg)
        block_weights = lw.weights_for_block(rows, times)
        per_event = np.array(
            [
                lw.policy.action(normalize_state(row, int(t)))
                for row, t in zip(rows, times)
            ]
        )
        assert np.array_equal(block_weights, per_event)

    def test_gpsa_inline_rows_match_context_rows(self):
        """The lazy-deletion kernel serves the same rows as WSD's path."""
        events = dynamic_stream(deletion_fraction=0.3, seed=21)
        _, ctx_rows, ctx_times = collect_states(
            "wedge", "max", events, block_serving=False, sampler_cls=GPSA
        )
        _, blk_rows, blk_times = collect_states(
            "wedge", "max", events, block_serving=True, sampler_cls=GPSA
        )
        assert np.array_equal(ctx_times, blk_times)
        assert np.array_equal(ctx_rows, blk_rows)

    def test_arena_inline_rows_match_context_rows(self):
        """Triangle rows stay bit-identical when slabs serve the probe.

        A low cutoff forces the arena's lane-2 (arrival time) path for
        the temporal features; the shared searchsorted intersection must
        produce the same mins/maxes the scalar dict walk does.
        """
        events = dynamic_stream(
            num_events=900, num_vertices=30, deletion_fraction=0.2, seed=3
        )
        for agg in AGGREGATIONS:
            _, ctx_rows, _ = collect_states(
                "triangle", agg, events, block_serving=False
            )
            dim = state_dimension(PATTERNS["triangle"])
            lw = LearnedWeight(make_policy(dim), temporal_aggregation=agg)
            rows, times = [], []
            lw.state_observer = lambda row, t: (rows.append(row),
                                                times.append(t))
            sampler = WSD("triangle", 40, lw, rng=np.random.default_rng(7))
            graph = sampler._sampled_graph
            graph.enable_arena(
                graph._payload_fn, cutoff=4, payload2_fn=graph._payload2_fn
            )
            for event in events:
                sampler.process(event)
            assert list(graph.slabbed_vertices())  # the slab path ran
            assert np.array_equal(ctx_rows, np.array(rows))


class TestNormalizeStates:
    def test_matrix_matches_per_row(self):
        rng = np.random.default_rng(0)
        states = rng.integers(0, 50, size=(32, 6)).astype(np.float64)
        times = rng.integers(1, 100, size=32)
        out = normalize_states(states, times)
        for k in range(32):
            row = normalize_state(states[k], int(times[k]))
            assert np.array_equal(out[k], row)

    def test_zero_time_rows_skip_division(self):
        states = np.ones((3, 5))
        times = [0, 4, 0]
        out = normalize_states(states, times)
        assert np.array_equal(out[0, 3:], states[0, 3:])
        assert np.array_equal(out[2, 3:], states[2, 3:])
        assert np.array_equal(out[1, 3:], states[1, 3:] / 4.0)

    def test_shape_validation(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            normalize_states(np.ones(5), [1])
        with pytest.raises(ConfigurationError):
            normalize_states(np.ones((2, 5)), [1, 2, 3])
