"""Tests for the partial-estimate combiners."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.estimators.combine import (
    combine_mean,
    combine_partition,
    combine_variance_weighted,
)


class TestMean:
    def test_plain_average(self):
        assert combine_mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_single_estimate_identity(self):
        assert combine_mean([7.5]) == 7.5

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            combine_mean([])


class TestVarianceWeighted:
    def test_equal_variances_reduce_to_mean(self):
        estimates = [10.0, 14.0, 12.0]
        assert combine_variance_weighted(
            estimates, [2.0, 2.0, 2.0]
        ) == pytest.approx(combine_mean(estimates))

    def test_low_variance_replica_dominates(self):
        merged = combine_variance_weighted([100.0, 0.0], [1e-6, 1e6])
        assert merged == pytest.approx(100.0, rel=1e-6)

    def test_weights_are_inverse_variance(self):
        # w1 : w2 = 2 : 1 for variances 1 : 2.
        merged = combine_variance_weighted([3.0, 9.0], [1.0, 2.0])
        assert merged == pytest.approx((2.0 * 3.0 + 1.0 * 9.0) / 3.0)

    def test_degenerate_variance_falls_back_to_mean(self):
        estimates = [5.0, 15.0]
        for bad in (0.0, -1.0, math.inf, math.nan):
            assert combine_variance_weighted(
                estimates, [1.0, bad]
            ) == pytest.approx(10.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            combine_variance_weighted([1.0, 2.0], [1.0])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            combine_variance_weighted([], [])


class TestPartition:
    def test_triangle_scale_is_n_squared(self):
        # |H| = 3 → scale N^2; shard-local sums of 4 shards.
        merged = combine_partition([1.0, 2.0, 3.0, 4.0], 4, 3)
        assert merged == pytest.approx(16.0 * 10.0)

    def test_wedge_scale_is_n(self):
        merged = combine_partition([5.0, 5.0], 2, 2)
        assert merged == pytest.approx(2.0 * 10.0)

    def test_single_shard_is_identity(self):
        assert combine_partition([42.0], 1, 3) == pytest.approx(42.0)

    def test_shard_count_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            combine_partition([1.0, 2.0], 3, 3)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            combine_partition([], 0, 3)
        with pytest.raises(ConfigurationError):
            combine_partition([1.0], 1, 0)
