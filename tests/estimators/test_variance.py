"""Tests for variance analysis and confidence intervals."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.estimators.variance import (
    bootstrap_confidence_interval,
    normal_confidence_interval,
    repeated_trials,
    summarize_trials,
)
from repro.graph.generators import powerlaw_cluster
from repro.patterns.exact import ExactCounter
from repro.samplers.thinkd import ThinkD
from repro.streams.scenarios import light_deletion_stream


class TestNormalCI:
    def test_contains_mean(self):
        data = [1.0, 2.0, 3.0, 4.0, 5.0]
        low, high = normal_confidence_interval(data)
        assert low < np.mean(data) < high

    def test_wider_at_higher_level(self):
        data = list(np.random.default_rng(0).normal(size=50))
        low95, high95 = normal_confidence_interval(data, 0.95)
        low99, high99 = normal_confidence_interval(data, 0.99)
        assert high99 - low99 > high95 - low95

    def test_coverage_simulation(self):
        """~95% of normal CIs over N(0,1) samples must contain 0."""
        rng = np.random.default_rng(1)
        covered = 0
        runs = 400
        for _ in range(runs):
            data = rng.normal(size=30)
            low, high = normal_confidence_interval(data, 0.95)
            if low <= 0.0 <= high:
                covered += 1
        assert 0.90 <= covered / runs <= 0.99

    def test_too_few_points(self):
        with pytest.raises(ConfigurationError):
            normal_confidence_interval([1.0])

    def test_invalid_level(self):
        with pytest.raises(ConfigurationError):
            normal_confidence_interval([1.0, 2.0], level=1.0)


class TestBootstrapCI:
    def test_contains_mean(self):
        data = list(np.random.default_rng(2).normal(10.0, 1.0, size=40))
        low, high = bootstrap_confidence_interval(data, rng=3)
        assert low < np.mean(data) < high

    def test_deterministic_given_rng(self):
        data = [1.0, 5.0, 3.0, 2.0]
        a = bootstrap_confidence_interval(data, rng=7)
        b = bootstrap_confidence_interval(data, rng=7)
        assert a == b

    def test_too_few_points(self):
        with pytest.raises(ConfigurationError):
            bootstrap_confidence_interval([1.0])


class TestSummarize:
    def test_fields(self):
        data = [1.0, 2.0, 3.0, 4.0]
        summary = summarize_trials(data)
        assert summary.mean == pytest.approx(2.5)
        assert summary.ci_low < 2.5 < summary.ci_high
        assert summary.coefficient_of_variation > 0.0
        assert summary.covers(2.5)

    def test_bootstrap_method(self):
        summary = summarize_trials(
            [1.0, 2.0, 3.0, 4.0], method="bootstrap", rng=0
        )
        assert summary.ci_low < summary.mean < summary.ci_high

    def test_unknown_method(self):
        with pytest.raises(ConfigurationError):
            summarize_trials([1.0, 2.0], method="magic")

    def test_zero_mean_cv(self):
        summary = summarize_trials([-1.0, 1.0, -1.0, 1.0])
        assert summary.coefficient_of_variation == float("inf")


class TestRepeatedTrials:
    @pytest.fixture(scope="class")
    def workload(self):
        edges = powerlaw_cluster(80, m=4, triangle_probability=0.7, rng=0)
        stream = light_deletion_stream(edges, beta_l=0.2, rng=1)
        truth = ExactCounter("triangle").process_stream(stream)
        return stream, truth

    def test_runs_and_varies(self, workload):
        stream, _ = workload
        estimates = repeated_trials(
            lambda rng: ThinkD("triangle", 40, rng=rng), stream, trials=10
        )
        assert len(estimates) == 10
        assert len(set(estimates)) > 1

    def test_deterministic_given_seed(self, workload):
        stream, _ = workload
        factory = lambda rng: ThinkD("triangle", 40, rng=rng)  # noqa: E731
        a = repeated_trials(factory, stream, trials=5, seed=3)
        b = repeated_trials(factory, stream, trials=5, seed=3)
        assert a == b

    def test_ci_covers_truth(self, workload):
        """The estimator is unbiased, so a 99% CI over many trials
        should contain the ground truth."""
        stream, truth = workload
        estimates = repeated_trials(
            lambda rng: ThinkD("triangle", 50, rng=rng), stream, trials=200
        )
        summary = summarize_trials(estimates, level=0.99)
        assert summary.covers(truth)

    def test_invalid_trials(self, workload):
        stream, _ = workload
        with pytest.raises(ConfigurationError):
            repeated_trials(
                lambda rng: ThinkD("triangle", 40, rng=rng), stream, trials=0
            )
