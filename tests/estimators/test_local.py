"""Tests for local (per-vertex / per-edge) counting via observers."""

import numpy as np
import pytest

from repro.estimators.local import LocalSubgraphCounter
from repro.graph.generators import powerlaw_cluster
from repro.graph.stream import EdgeEvent
from repro.patterns.exact import ExactCounter
from repro.samplers.thinkd import ThinkD
from repro.samplers.wsd import WSD
from repro.streams.scenarios import light_deletion_stream
from repro.weights.heuristic import GPSHeuristicWeight, UniformWeight


def exact_local_triangles(stream):
    """Per-vertex exact triangle counts at the end of the stream."""
    counter = ExactCounter("triangle")
    counter.process_stream(stream)
    graph = counter.graph
    local = {}
    for v in graph.vertices():
        count = 0
        neighbours = list(graph.neighbors(v))
        for i, a in enumerate(neighbours):
            a_neighbours = graph.neighbors(a)
            for b in neighbours[i + 1:]:
                if b in a_neighbours:
                    count += 1
        local[v] = count
    return local


@pytest.fixture(scope="module")
def workload():
    edges = powerlaw_cluster(80, m=4, triangle_probability=0.8, rng=0)
    return light_deletion_stream(edges, beta_l=0.15, rng=1)


class TestLocalSubgraphCounter:
    def test_attach_registers(self, workload):
        sampler = WSD("triangle", 40, UniformWeight(), rng=0)
        local = LocalSubgraphCounter().attach(sampler)
        assert sampler.instance_observers == [local]

    def test_exact_when_budget_covers_everything(self, workload):
        sampler = WSD("triangle", 10_000, UniformWeight(), rng=0)
        local = LocalSubgraphCounter().attach(sampler)
        sampler.process_stream(workload)
        expected = exact_local_triangles(workload)
        for v, count in expected.items():
            assert local.vertex_estimate(v) == pytest.approx(count)

    def test_sum_of_vertex_estimates_is_three_estimates(self, workload):
        """Each triangle instance credits exactly 3 vertices, so the
        vertex sum equals 3x the global estimate."""
        sampler = WSD("triangle", 60, GPSHeuristicWeight(), rng=1)
        local = LocalSubgraphCounter().attach(sampler)
        sampler.process_stream(workload)
        total = sum(local.vertex_estimate(v) for v in local.vertices())
        assert total == pytest.approx(3.0 * sampler.estimate)

    def test_edge_tracking(self, workload):
        sampler = WSD("triangle", 10_000, UniformWeight(), rng=0)
        local = LocalSubgraphCounter(track_edges=True).attach(sampler)
        sampler.process_stream(workload)
        total = sum(local.edge_estimate(e) for e in local._edge)
        assert total == pytest.approx(3.0 * sampler.estimate)

    def test_unbiased_per_vertex(self, workload):
        """Mean local estimate over repeated runs approaches the exact
        local count for the heaviest vertex."""
        expected = exact_local_triangles(workload)
        heavy = max(expected, key=expected.get)
        means = []
        for seed in range(150):
            sampler = ThinkD("triangle", 50, rng=seed)
            local = LocalSubgraphCounter().attach(sampler)
            sampler.process_stream(workload)
            means.append(local.vertex_estimate(heavy))
        mean = float(np.mean(means))
        stderr = float(np.std(means) / np.sqrt(len(means)))
        assert abs(mean - expected[heavy]) < max(
            4 * stderr, 0.15 * expected[heavy]
        )

    def test_top_vertices_order(self, workload):
        sampler = WSD("triangle", 10_000, UniformWeight(), rng=0)
        local = LocalSubgraphCounter().attach(sampler)
        sampler.process_stream(workload)
        top = local.top_vertices(5)
        values = [value for _, value in top]
        assert values == sorted(values, reverse=True)
        expected = exact_local_triangles(workload)
        assert top[0][0] == max(expected, key=expected.get)

    def test_reset(self):
        local = LocalSubgraphCounter()
        local((1, 2), ((1, 3), (2, 3)), 1.0)
        assert len(local) == 3
        local.reset()
        assert len(local) == 0

    def test_deletions_reduce_local_counts(self):
        sampler = WSD("triangle", 100, UniformWeight(), rng=0)
        local = LocalSubgraphCounter().attach(sampler)
        events = [
            EdgeEvent.insertion(1, 2),
            EdgeEvent.insertion(2, 3),
            EdgeEvent.insertion(1, 3),
        ]
        for event in events:
            sampler.process(event)
        assert local.vertex_estimate(1) == pytest.approx(1.0)
        sampler.process(EdgeEvent.deletion(1, 2))
        assert local.vertex_estimate(1) == pytest.approx(0.0)
