"""Tests for ARE / MARE metrics and the estimate tracker."""

import pytest

from repro.errors import ConfigurationError
from repro.estimators.metrics import (
    absolute_relative_error,
    mean_absolute_relative_error,
)
from repro.estimators.tracker import EstimateTrace, run_with_trace
from repro.graph.generators import powerlaw_cluster
from repro.patterns.exact import ExactCounter
from repro.samplers.wsd import WSD
from repro.streams.scenarios import light_deletion_stream
from repro.weights.heuristic import UniformWeight


class TestARE:
    def test_exact_is_zero(self):
        assert absolute_relative_error(10.0, 10) == 0.0

    def test_percentage(self):
        assert absolute_relative_error(110.0, 100) == pytest.approx(10.0)

    def test_symmetric_in_error_direction(self):
        assert absolute_relative_error(90.0, 100) == pytest.approx(10.0)

    def test_zero_truth_rejected(self):
        with pytest.raises(ConfigurationError):
            absolute_relative_error(5.0, 0)

    def test_negative_truth_supported(self):
        assert absolute_relative_error(-9.0, -10) == pytest.approx(10.0)


class TestMARE:
    def test_mean_over_checkpoints(self):
        value = mean_absolute_relative_error([11.0, 18.0], [10, 20])
        assert value == pytest.approx((10.0 + 10.0) / 2)

    def test_zero_truth_checkpoints_skipped(self):
        value = mean_absolute_relative_error([5.0, 11.0], [0, 10])
        assert value == pytest.approx(10.0)

    def test_all_zero_truth_rejected(self):
        with pytest.raises(ConfigurationError):
            mean_absolute_relative_error([1.0, 2.0], [0, 0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            mean_absolute_relative_error([1.0], [1, 2])


class TestRunWithTrace:
    @pytest.fixture(scope="class")
    def workload(self):
        edges = powerlaw_cluster(100, m=4, triangle_probability=0.7, rng=0)
        return light_deletion_stream(edges, beta_l=0.2, rng=1)

    def test_trace_lengths(self, workload):
        sampler = WSD("triangle", 50, UniformWeight(), rng=2)
        trace = run_with_trace(sampler, workload, num_checkpoints=10)
        assert len(trace.estimates) == len(trace.truths)
        assert len(trace.checkpoints) == len(trace.estimates)
        assert trace.checkpoints[-1] == len(workload)

    def test_truths_match_exact_counter(self, workload):
        sampler = WSD("triangle", 50, UniformWeight(), rng=2)
        trace = run_with_trace(sampler, workload, num_checkpoints=5)
        assert trace.final_truth == ExactCounter("triangle").process_stream(
            workload
        )

    def test_sampler_time_recorded(self, workload):
        sampler = WSD("triangle", 50, UniformWeight(), rng=2)
        trace = run_with_trace(sampler, workload)
        assert trace.sampler_seconds > 0.0

    def test_are_and_mare_computable(self, workload):
        sampler = WSD("triangle", 50, UniformWeight(), rng=2)
        trace = run_with_trace(sampler, workload)
        assert trace.are() >= 0.0
        assert trace.mare() >= 0.0

    def test_empty_trace_raises(self):
        trace = EstimateTrace()
        with pytest.raises(ConfigurationError):
            _ = trace.final_estimate

    def test_invalid_checkpoints(self, workload):
        sampler = WSD("triangle", 50, UniformWeight(), rng=2)
        with pytest.raises(ConfigurationError):
            run_with_trace(sampler, workload, num_checkpoints=0)
